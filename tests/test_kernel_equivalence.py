"""Optimized-kernel equivalence: the indexed event queue and the
homogeneous-rank collapse must be *invisible* in simulation results.

Every cell of the topology x overlap x churn sweep runs the same scenario
under four kernel configurations -- {exact heap, indexed queue} x
{per-rank fabric, collapse enabled} -- and requires bit-identical
:class:`DistributedResult` fields (only the observability counters
``collapsed_collectives`` / ``sim_events`` may differ).  The collapse is
not an approximation: it replicates the per-stage transfer arithmetic of
the exact ring, so even float timing must agree exactly.

The deactivation tests pin the other half of the contract: the fast path
must *refuse* to engage when its preconditions fail (heterogeneous
intra-node hardware, a failure armed mid-round) and fall back to the
per-rank fabric, again without changing results.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.distributed import (
    ClusterMembership,
    MembershipEvent,
    run_elastic,
)
from repro.sim.scenarios import JobMix, JobSpec
from repro.sim.workloads import CONFIG_A, make_workload

NODES = 4
GPUS = 2
STEPS_PER_GPU = 4

CHURN = {
    "static": (),
    "churn": (
        MembershipEvent("leave", node=0, epoch=1),
        MembershipEvent("join", node=NODES, epoch=2),
    ),
    "fail": (MembershipEvent("fail", node=1, epoch=1, after=0.1),),
}


def run(
    topology,
    overlap,
    events=(),
    collapse=True,
    queue=None,
    node_hardware=None,
    cache_fraction=1.0,
    checkpoint=None,
):
    workload = make_workload(
        "image_segmentation", seed=0, dataset_size=6 * NODES
    )
    membership = ClusterMembership(NODES, list(events))
    return run_elastic(
        "minato",
        workload,
        CONFIG_A,
        membership,
        gpus_per_node=GPUS,
        fabric="ring",
        topology=topology,
        overlap=overlap,
        buckets=2 if overlap else 1,
        node_hardware=node_hardware,
        total_steps=STEPS_PER_GPU * NODES * GPUS,
        cache_fraction=cache_fraction,
        collapse=collapse,
        queue=queue,
        checkpoint=checkpoint,
    )


def comparable(result):
    """All result fields except the optimization-observability counters
    (``collapse_cross_vetoes`` counts collapse *attempts* vetoed by
    foreign link traffic, and the baseline never attempts)."""
    fields = dict(vars(result))
    for name in ("collapsed_collectives", "sim_events", "collapse_cross_vetoes"):
        fields.pop(name)
    return fields


@pytest.mark.parametrize("churn", sorted(CHURN))
@pytest.mark.parametrize("overlap", [False, True], ids=["serial", "overlap"])
@pytest.mark.parametrize("topology", ["flat", "hierarchical"])
def test_kernel_configurations_agree(topology, overlap, churn):
    events = CHURN[churn]
    legacy = run(topology, overlap, events, collapse=False, queue="heap")
    reference = comparable(legacy)
    for collapse, queue in (
        (True, None),  # the default kernel: indexed queue + collapse
        (True, "heap"),
        (False, None),
    ):
        candidate = run(topology, overlap, events, collapse=collapse, queue=queue)
        assert comparable(candidate) == reference, (
            f"{topology}/{'overlap' if overlap else 'serial'}/{churn}: "
            f"collapse={collapse} queue={queue} diverged from exact heap"
        )


@pytest.mark.parametrize("churn", sorted(CHURN))
@pytest.mark.parametrize("overlap", [False, True], ids=["serial", "overlap"])
@pytest.mark.parametrize("topology", ["flat", "hierarchical"])
def test_single_job_mix_matches_run_elastic(topology, overlap, churn):
    """A one-job JobMix on an explicitly built Cluster is the degenerate
    multi-tenant case and must be byte-identical to calling run_elastic
    directly: the cluster-owned-resources refactor may not perturb the
    single-tenant path by even one float."""
    events = CHURN[churn]
    direct = run(topology, overlap, events)
    cluster = Cluster(
        ClusterMembership(NODES, list(events)),
        CONFIG_A,
        gpus_per_node=GPUS,
        cache_fraction=1.0,
        topology=topology,
    )
    spec = JobSpec(
        job_id="job0",
        loader="minato",
        workload_name="image_segmentation",
        dataset_size=6 * NODES,
        total_steps=STEPS_PER_GPU * NODES * GPUS,
        fabric="ring",
        overlap=overlap,
        buckets=2 if overlap else 1,
    )
    mix = JobMix([spec], cluster).run()
    assert len(mix.jobs) == 1
    assert comparable(mix.jobs[0]) == comparable(direct), (
        f"{topology}/{'overlap' if overlap else 'serial'}/{churn}: "
        f"single-job mix diverged from run_elastic"
    )
    assert mix.makespan == direct.training_time


@pytest.mark.parametrize("queue", [None, "heap"], ids=["indexed", "heap"])
@pytest.mark.parametrize("churn", ["static", "churn"])
def test_dormant_checkpoint_policy_adds_zero_kernel_events(churn, queue):
    """``checkpoint=None`` and a never-firing policy must be
    indistinguishable to the kernel: identical results INCLUDING
    ``sim_events`` -- the pay-as-you-go guarantee that the checkpoint
    subsystem costs nothing (not one event) until a snapshot or restore
    actually happens.  (Fail cells are excluded by design: a node death
    triggers a restore pass, which is the subsystem *working*.)"""
    events = CHURN[churn]
    plain = run("flat", False, events, queue=queue)
    dormant = run(
        "flat",
        False,
        events,
        queue=queue,
        checkpoint=CheckpointPolicy(interval_steps=10**9),
    )
    assert vars(dormant) == vars(plain), (
        f"{churn}/queue={queue}: a dormant checkpoint policy perturbed "
        f"the run"
    )
    assert plain.checkpoint_write_seconds == 0.0
    assert plain.restore_seconds == 0.0
    assert plain.lost_steps == 0
    assert plain.checkpoint_bytes == 0.0


@pytest.mark.parametrize("churn", sorted(CHURN))
def test_kernel_configurations_agree_with_active_checkpoint(churn):
    """Snapshot writes and failure restores ride the same pipes as every
    other transfer, so an *active* checkpoint run must also be
    bit-identical across kernel configurations."""
    policy = CheckpointPolicy(interval_steps=2, state_scale=8.0)
    events = CHURN[churn]
    legacy = run(
        "flat", False, events, collapse=False, queue="heap", checkpoint=policy
    )
    reference = comparable(legacy)
    assert legacy.checkpoint_write_seconds > 0.0
    for collapse, queue in ((True, None), (True, "heap"), (False, None)):
        candidate = run(
            "flat", False, events,
            collapse=collapse, queue=queue, checkpoint=policy,
        )
        assert comparable(candidate) == reference, (
            f"{churn}: collapse={collapse} queue={queue} diverged from "
            f"exact heap with checkpointing active"
        )


def run_contended(collapse=True, queue=None, checkpoint=None):
    """A cross-class contention cell: hierarchical overlap with remote
    storage, so loader misses (and checkpoint writes, when a policy is
    armed) share each node's NIC link with the bucket collectives."""
    workload = make_workload(
        "image_segmentation", seed=0, dataset_size=6 * NODES
    )
    cluster = Cluster(
        ClusterMembership(NODES, []),
        CONFIG_A,
        gpus_per_node=GPUS,
        cache_fraction=0.6,
        topology="hierarchical",
        storage_over_nic=True,
        queue=queue,
    )
    return run_elastic(
        "minato",
        workload,
        CONFIG_A,
        fabric="ring",
        topology="hierarchical",
        overlap=True,
        buckets=2,
        total_steps=STEPS_PER_GPU * NODES * GPUS,
        collapse=collapse,
        cluster=cluster,
        checkpoint=checkpoint,
    )


def test_kernel_configurations_agree_under_cross_class_contention():
    """The shared-link flow engine under genuine cross-class traffic --
    loader misses and checkpoint writes contending with collectives on
    every node's NIC -- must still be bit-identical across kernel
    configurations, including the per-class wait attribution."""
    policy = CheckpointPolicy(interval_steps=2, state_scale=8.0)
    legacy = run_contended(collapse=False, queue="heap", checkpoint=policy)
    reference = comparable(legacy)
    # all three traffic classes flowed on the shared links, and the
    # collectives measurably paid for the company
    assert set(legacy.link_wait_by_class) == {
        "collective", "loader", "checkpoint",
    }
    assert legacy.link_wait_by_class["collective"] > 0.0
    for collapse, queue in ((True, None), (True, "heap"), (False, None)):
        candidate = run_contended(
            collapse=collapse, queue=queue, checkpoint=policy
        )
        assert comparable(candidate) == reference, (
            f"collapse={collapse} queue={queue} diverged from exact heap "
            f"under cross-class NIC contention"
        )


def test_collapse_vetoed_while_foreign_traffic_in_flight():
    """While loader-class bytes are still draining on a link the
    quiescent-collapse probe must refuse (counted in
    ``collapse_cross_vetoes``), and the collective must still complete
    exactly as the per-rank path would under the same contention."""
    from repro.sim.distributed import AllReduceModel
    from repro.sim.kernel import AllOf, Environment

    def drive(collapse):
        env = Environment()
        model = AllReduceModel()
        fabric = model.make_fabric(env, collapse=collapse)
        members = list(range(4))
        fabric.set_ring(members)
        # a fat loader-class flow still draining on member 0's link when
        # every rank enters the collective together
        loader = fabric.topology.link(0).stream(
            ("tenant", 0, "loader"), "loader"
        )
        loader.transfer(model.gradient_bytes * 8)

        def participant(member):
            yield from fabric.allreduce("step", member)

        procs = [env.process(participant(m)) for m in members]
        env.run(until=AllOf(env, procs))
        return env.now, fabric

    contended_end, fast = drive(collapse=True)
    exact_end, exact = drive(collapse=False)
    assert fast.collapse_cross_vetoes > 0
    assert fast.collapsed_collectives == 0
    assert contended_end == exact_end
    assert fast.link_wait_by_class == exact.link_wait_by_class
    # the shared flow genuinely slowed member 0's ring stream down
    assert fast.link_wait_by_class["collective"] > 0.0


@st.composite
def churn_schedules(draw):
    """Random-but-valid membership schedules: optional leave, join, and
    fail events on distinct nodes at drawn anchors."""
    events = []
    if draw(st.booleans()):
        events.append(
            MembershipEvent("leave", node=1, epoch=draw(st.integers(1, 2)))
        )
    if draw(st.booleans()):
        events.append(
            MembershipEvent("join", node=NODES, epoch=draw(st.integers(1, 2)))
        )
    if draw(st.booleans()):
        events.append(
            MembershipEvent(
                "fail",
                node=2,
                epoch=draw(st.integers(0, 2)),
                after=draw(st.sampled_from([0.0, 0.2, 0.5])),
            )
        )
    return tuple(events)


@settings(max_examples=10, deadline=None)
@given(
    topology=st.sampled_from(["flat", "hierarchical"]),
    overlap=st.booleans(),
    events=churn_schedules(),
    cache_fraction=st.sampled_from([0.8, 1.0]),
)
def test_equivalence_over_random_churn_schedules(
    topology, overlap, events, cache_fraction
):
    """Hypothesis sweep: whatever the membership schedule throws at the
    run, the optimized kernel's results match the exact kernel's."""
    legacy = run(
        topology, overlap, events,
        collapse=False, queue="heap", cache_fraction=cache_fraction,
    )
    fast = run(topology, overlap, events, cache_fraction=cache_fraction)
    assert comparable(fast) == comparable(legacy)


@pytest.mark.parametrize("topology", ["flat", "hierarchical"])
def test_collapse_engages_on_homogeneous_static_runs(topology):
    result = run(topology, overlap=False)
    assert result.collapsed_collectives > 0


def test_collapse_deactivates_under_heterogeneity():
    """Mixed intra-node hardware breaks the closed form's homogeneity
    precondition: the hierarchical schedule must refuse to collapse."""
    slow = dataclasses.replace(
        CONFIG_A, name="config_a_slow_nvlink", intra_node_bandwidth=150e9
    )
    legacy = run(
        "hierarchical", False, collapse=False, queue="heap",
        node_hardware={0: slow},
    )
    fast = run("hierarchical", False, node_hardware={0: slow})
    assert fast.collapsed_collectives == 0
    assert comparable(fast) == comparable(legacy)


def test_collapse_deactivates_when_failure_armed(monkeypatch):
    """A fail event scheduled inside a round disables the fast path for
    that whole round (a representative-rank walk cannot model a rank dying
    mid-collective); rounds after the failure may legitimately collapse
    again.  Spy on the decider to prove no collective that started while
    the doomed rank was armed ever collapsed."""
    from repro.sim import fabric as fabric_mod

    entries = []
    original = fabric_mod.RingFabric._collapse_decider

    def spy(self, key, entry):
        entries.append(entry)
        return original(self, key, entry)

    monkeypatch.setattr(fabric_mod.RingFabric, "_collapse_decider", spy)
    fail_after = 0.3
    events = (MembershipEvent("fail", node=1, epoch=0, after=fail_after),)
    legacy = run("flat", False, events, collapse=False, queue="heap")
    fast = run("flat", False, events)
    assert comparable(fast) == comparable(legacy)
    # the armed round never even registers a collapse attempt: the runner
    # clears ring.collapse before its first step, so any recorded entry
    # must postdate the death
    assert entries, "collapse never re-engaged after the failure round"
    assert all(entry.t0 > fail_after for entry in entries)
    assert fast.collapsed_collectives == sum(e.collapsed for e in entries)


def test_collapse_counter_reported():
    """The observability counters surface in the result and differ between
    kernels exactly as designed."""
    fast = run("flat", False)
    legacy = run("flat", False, collapse=False, queue="heap")
    assert legacy.collapsed_collectives == 0
    assert fast.sim_events < legacy.sim_events
