"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import EmptySchedule, SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(3.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [3.5]


def test_zero_delay_timeout_fires_at_current_instant():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(0)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(2, "b"))
    env.process(proc(1, "a"))
    env.process(proc(3, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_process_return_value_propagates():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer(results):
        value = yield env.process(inner())
        results.append(value)

    results = []
    env.process(outer(results))
    env.run()
    assert results == [42]


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    value = env.run(until=env.process(proc()))
    assert value == "done"
    assert env.now == 2


def test_run_until_time_stops_and_sets_now():
    env = Environment()
    log = []

    def proc():
        while True:
            yield env.timeout(1)
            log.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert log == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=2)


def test_run_until_untriggered_event_with_empty_schedule_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(EmptySchedule):
        env.run(until=event)


def test_event_succeed_twice_raises():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_to_waiter():
    env = Environment()
    event = env.event()

    def failer():
        yield env.timeout(1)
        event.fail(RuntimeError("boom"))

    def waiter(log):
        try:
            yield event
        except RuntimeError as exc:
            log.append(str(exc))

    log = []
    env.process(failer())
    env.process(waiter(log))
    env.run()
    assert log == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yield_on_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def proc():
        timeout = env.timeout(1)
        yield env.timeout(2)  # the first timeout is long processed by now
        yield timeout
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [2.0]


def test_interrupt_wakes_process_early():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("finished")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(victim):
        yield env.timeout(5)
        victim.interrupt(cause="deadline")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert log == [("interrupted", 5.0, "deadline")]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_self_interrupt_raises():
    """Regression: the guard compared the process's *wait target* against
    the active process, so a process interrupting itself slipped past it
    and corrupted its own resume state instead of raising."""
    env = Environment()
    log = []

    def selfish():
        proc = env.active_process
        with pytest.raises(SimulationError):
            proc.interrupt(cause="me")
        log.append("guarded")
        yield env.timeout(1)
        log.append(env.now)

    env.process(selfish())
    env.run()
    assert log == ["guarded", 1.0]


def test_interrupting_the_process_waited_on_is_allowed():
    """The broken guard also *wrongly* rejected interrupting a process that
    is currently waiting on the interrupter: target-is-active is not
    self-interruption."""
    env = Environment()
    log = []

    def child():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append(("child-interrupted", env.now, interrupt.cause))

    def parent(child_proc):
        yield env.timeout(5)
        # child waits on its timeout; parent is active and interrupts it --
        # legitimate, and distinct from child interrupting itself
        child_proc.interrupt(cause="parent")
        yield child_proc

    child_proc = env.process(child())
    env.process(parent(child_proc))
    env.run()
    assert log == [("child-interrupted", 5.0, "parent")]


def test_interrupting_a_waiter_on_the_active_process():
    """A process A waiting on process B may be interrupted *by* B: the old
    guard compared A's target (B) to the active process (B) and raised."""
    env = Environment()
    log = []

    def waiter(target_holder):
        try:
            yield target_holder[0]
            log.append("target-finished")
        except Interrupt as interrupt:
            log.append(("interrupted-by", interrupt.cause, env.now))

    def busy(waiter_holder):
        yield env.timeout(3)
        # waiter is blocked on *this* process; interrupt it anyway
        waiter_holder[0].interrupt(cause="busy-proc")
        yield env.timeout(10)

    busy_holder = []
    waiter_holder = []
    busy_proc = env.process(busy(waiter_holder))
    busy_holder.append(busy_proc)
    waiter_proc = env.process(waiter(busy_holder))
    waiter_holder.append(waiter_proc)
    env.run()
    assert log == [("interrupted-by", "busy-proc", 3.0)]


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(1)
        log.append(env.now)

    def interrupter(victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert log == [6.0]


def test_any_of_triggers_on_first():
    env = Environment()
    log = []

    def proc():
        first = env.timeout(1, value="fast")
        second = env.timeout(5, value="slow")
        result = yield AnyOf(env, [first, second])
        log.append((env.now, list(result.values())))

    env.process(proc())
    env.run()
    assert log == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc():
        events = [env.timeout(d, value=d) for d in (1, 3, 2)]
        result = yield AllOf(env, events)
        log.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert log == [(3.0, [1, 2, 3])]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_yield_non_event_is_an_error():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_many_processes_scale():
    env = Environment()
    counter = []

    def proc(delay):
        yield env.timeout(delay)
        counter.append(delay)

    for i in range(1000):
        env.process(proc(i % 17))
    env.run()
    assert len(counter) == 1000
