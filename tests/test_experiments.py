"""Smoke tests for the experiment runners.

Full-fidelity runs (with all shape checks enforced) live in ``benchmarks/``;
these tests exercise every runner at a small scale and validate report
structure, determinism and the claim-checking machinery itself.
"""

import os

import pytest

from repro.experiments import REGISTRY, Check, ExperimentReport, default_scale
from repro.experiments import fig1b, fig2, fig10, fig12, table2, artifact_e1, fig11bc

SMALL = 0.03


def test_registry_covers_every_paper_artifact():
    assert set(REGISTRY) == {
        "table2",
        "fig1b",
        "fig2",
        "fig3",
        "fig4",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11a",
        "fig11bc",
        "fig12",
        "artifact_e1",
        "ablations",
        "distributed",
        "distributed_elastic",
        "distributed_overlap",
        "distributed_checkpoint",
        "scenarios",
    }


def test_report_render_and_save(tmp_path):
    report = ExperimentReport(experiment_id="x", title="T", body="B")
    report.check("always", True, "d")
    report.check("never", False)
    out = report.render()
    assert "[PASS] always" in out
    assert "[MISS] never" in out
    assert not report.all_passed
    assert report.passed_count == 1
    path = report.save(str(tmp_path))
    assert os.path.exists(path)


def test_check_render():
    assert "PASS" in Check("c", True).render()
    assert "MISS" in Check("c", False, "why").render()


def test_default_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert default_scale() == pytest.approx(0.1)
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert default_scale() == pytest.approx(0.5)
    monkeypatch.setenv("REPRO_SCALE", "7")  # clamped
    assert default_scale() == 1.0
    monkeypatch.setenv("REPRO_SCALE", "junk")
    assert default_scale() == pytest.approx(0.1)


def test_table2_full_fidelity():
    """Table 2 is cheap enough to check fully in the unit suite."""
    report = table2.run()
    assert report.all_passed, report.render()


def test_fig2_full_fidelity():
    report = fig2.run()
    assert report.all_passed, report.render()


def test_fig1b_small_scale_structure():
    report = fig1b.run(scale=SMALL)
    assert report.data["gpu_series"]
    assert report.data["cpu_series"]
    assert 0 <= report.data["gpu_avg"] <= 100


def test_fig10_small_scale_mechanics():
    report = fig10.run(scale=SMALL)
    results = report.data["results"]
    # the §5.5 mechanics hold even in short runs
    assert all(r.cache_hit_rate < 0.2 for r in results.values())
    assert results["minato"].training_time < results["pytorch"].training_time


def test_fig12_two_point_sweep():
    report = fig12.run(scale=SMALL, proportions=(0.0, 0.5))
    results = report.data["results"]
    assert set(results) == {0.0, 0.5}
    mid_ratio = (
        results[0.5]["pytorch"].training_time
        / results[0.5]["minato"].training_time
    )
    edge_ratio = (
        results[0.0]["pytorch"].training_time
        / results[0.0]["minato"].training_time
    )
    assert mid_ratio > edge_ratio  # variability is where Minato wins


def test_artifact_e1_small_scale_ordering():
    report = artifact_e1.run(scale=SMALL)
    results = report.data["results"]
    assert results["minato"].training_time < results["pytorch"].training_time


def test_fig11bc_small_scale_composition():
    report = fig11bc.run(scale=SMALL)
    for task in ("object_detection", "image_segmentation"):
        dist = report.data[task]["minato_dist"]
        assert abs(sum(dist) - 1.0) < 1e-9


def test_experiment_runs_are_deterministic():
    a = fig1b.run(scale=SMALL)
    b = fig1b.run(scale=SMALL)
    assert a.data["gpu_avg"] == b.data["gpu_avg"]
    assert a.data["cpu_avg"] == b.data["cpu_avg"]
