"""Bucketed compute/communication overlap in the distributed step loop.

Covers the PR's step-loop layer and its satellites:

* equivalence pin: ``topology="flat", overlap=False, buckets=1`` (the
  defaults) reproduce the pre-refactor runner's counters, sync totals and
  training time on both fabrics;
* conservation sweep (hypothesis): bucketing re-slices the gradient but
  never changes the bytes synced, and the exposed (non-overlapped) sync
  never exceeds the total, for every bucket count x topology x mode;
* fault injection: a mid-bucket node failure never deadlocks the
  hierarchical fabric (watchdog-guarded, the test_elastic pattern);
* entry-point validation of gpus_per_node / buckets / topology;
* per-node cache-size heterogeneity and post-reshard stale-byte
  (invalidation pressure) accounting.
"""

import threading
from dataclasses import replace

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.sim.distributed import (  # noqa: E402
    AllReduceModel,
    ClusterMembership,
    MembershipEvent,
    run_distributed,
    run_elastic,
)
from repro.sim.runner import run_simulation  # noqa: E402
from repro.sim.workloads import CONFIG_A, make_workload  # noqa: E402

DEADLOCK_TIMEOUT = 60.0


def tiny_speech(scale=0.02, dataset_size=120):
    return make_workload("speech_3s", dataset_size=dataset_size).scaled(scale)


def epoch_workload(n_samples=96, epochs=2):
    base = make_workload("speech_3s", dataset_size=n_samples)
    return replace(base, iterations=None, epochs=epochs)


def run_guarded(runner, *args, **kwargs):
    """Run on a watchdog thread; fail instead of hang (deadlock guard)."""
    outcome = {}

    def target():
        try:
            outcome["result"] = runner(*args, **kwargs)
        except BaseException as exc:
            outcome["error"] = exc

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout=DEADLOCK_TIMEOUT)
    if worker.is_alive():
        pytest.fail(f"deadlocked: args={args!r} kwargs={kwargs!r}")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


# ---------------------------------------------------------------------------
# Equivalence pins: defaults reproduce the pre-refactor runner
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "fabric,pinned_time,pinned_sync",
    [
        # recorded from the pre-refactor runner on this exact config
        ("analytic", 9.936, 0.660),
        ("ring", 9.936, 0.698),
    ],
)
def test_flat_serial_defaults_match_pre_refactor_runner(
    fabric, pinned_time, pinned_sync
):
    wl = tiny_speech()
    result = run_distributed(
        "minato", wl, CONFIG_A, nodes=2, gpus_per_node=2, steps_per_gpu=5,
        fabric=fabric,
    )
    assert (result.topology, result.overlap, result.buckets) == (
        "flat", False, 1,
    )
    assert result.steps == 20
    assert result.samples == 480
    assert result.training_time == pytest.approx(pinned_time, rel=0.005)
    assert result.sync_seconds_total == pytest.approx(pinned_sync, rel=0.005)
    # serial: every second of sync is exposed
    assert result.exposed_sync_seconds == pytest.approx(
        result.sync_seconds_total
    )


def test_explicit_flat_serial_arguments_equal_the_defaults():
    wl = tiny_speech()
    default = run_distributed(
        "minato", wl, CONFIG_A, nodes=2, gpus_per_node=2, steps_per_gpu=5,
        fabric="ring",
    )
    explicit = run_distributed(
        "minato", wl, CONFIG_A, nodes=2, gpus_per_node=2, steps_per_gpu=5,
        fabric="ring", topology="flat", overlap=False, buckets=1,
    )
    assert explicit.training_time == default.training_time
    assert explicit.sync_seconds_total == default.sync_seconds_total
    assert explicit.steps == default.steps


# ---------------------------------------------------------------------------
# Overlap semantics
# ---------------------------------------------------------------------------


def overlap_run(topology="flat", overlap=False, buckets=1, fabric="ring"):
    return run_distributed(
        "minato",
        tiny_speech(),
        CONFIG_A,
        nodes=2,
        gpus_per_node=2,
        steps_per_gpu=4,
        fabric=fabric,
        topology=topology,
        overlap=overlap,
        buckets=buckets,
    )


def test_overlap_reduces_exposed_sync():
    serial = overlap_run()
    overlapped = overlap_run(overlap=True, buckets=4)
    assert overlapped.exposed_sync_seconds < serial.exposed_sync_seconds
    assert overlapped.overlap_efficiency > 0.0
    assert serial.overlap_efficiency == 0.0


def test_hierarchical_overlap_composes_with_topology():
    """The acceptance pair: hierarchical+overlap strictly below flat+serial
    on exposed sync for a >= 2-GPU-per-node cluster."""
    baseline = overlap_run()
    best = overlap_run(topology="hierarchical", overlap=True, buckets=4)
    assert best.exposed_sync_seconds < baseline.exposed_sync_seconds


def test_single_rank_world_has_no_sync_to_overlap():
    result = run_distributed(
        "minato", tiny_speech(), CONFIG_A, nodes=1, gpus_per_node=1,
        steps_per_gpu=4, fabric="ring", overlap=True, buckets=4,
    )
    assert result.sync_seconds_total == 0.0
    assert result.exposed_sync_seconds == 0.0
    assert result.gradient_bytes_synced == 0.0


@settings(max_examples=8, deadline=None)
@given(
    buckets=st.integers(min_value=1, max_value=6),
    topology=st.sampled_from(["flat", "hierarchical"]),
    overlap=st.booleans(),
)
def test_bucketing_conserves_gradient_bytes_and_bounds_exposed(
    buckets, topology, overlap
):
    """Property sweep: for every K x topology x mode, (a) total gradient
    bytes equal the unbucketed case, (b) exposed <= total sync."""
    result = overlap_run(topology=topology, overlap=overlap, buckets=buckets)
    reference = AllReduceModel().gradient_bytes * result.steps
    assert result.gradient_bytes_synced == pytest.approx(reference)
    assert (
        result.exposed_sync_seconds
        <= result.sync_seconds_total + 1e-9 * max(result.sync_seconds_total, 1)
    )


# ---------------------------------------------------------------------------
# Fault injection: mid-bucket failure on the hierarchical fabric
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("overlap", [False, True])
def test_mid_bucket_failure_never_deadlocks_hierarchical_fabric(overlap):
    """Kill a node part-way into an epoch while its ranks are mid-bucket:
    the surviving sub-rings re-form within the detection window, the epoch
    completes, and the next re-shard re-covers the lost shard."""
    wl = epoch_workload(n_samples=96, epochs=3)
    membership = ClusterMembership(
        3, [MembershipEvent("fail", 2, epoch=1, after=0.4)]
    )
    result = run_guarded(
        run_elastic,
        "minato",
        wl,
        CONFIG_A,
        membership,
        gpus_per_node=2,
        fabric="ring",
        topology="hierarchical",
        overlap=overlap,
        buckets=3,
        detection_timeout=0.5,
    )
    n_samples = len(wl.dataset)
    assert result.epoch_coverage[1] < n_samples  # the lost shard remainder
    assert result.epoch_coverage[2] == n_samples  # re-covered after re-shard
    assert result.exposed_sync_seconds <= result.sync_seconds_total + 1e-9
    assert [len(m) for m in result.epoch_membership] == [3, 3, 2]


# ---------------------------------------------------------------------------
# Entry-point validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad_buckets", [0, -2])
def test_runners_reject_non_positive_buckets(bad_buckets):
    wl = tiny_speech()
    with pytest.raises(ConfigurationError, match="buckets"):
        run_distributed(
            "minato", wl, CONFIG_A, nodes=2, steps_per_gpu=2,
            buckets=bad_buckets,
        )
    with pytest.raises(ConfigurationError, match="buckets"):
        run_elastic(
            "minato", wl, CONFIG_A, ClusterMembership(2), buckets=bad_buckets,
        )


@pytest.mark.parametrize("bad_gpus", [0, -1])
def test_runners_reject_non_positive_gpus_per_node(bad_gpus):
    wl = tiny_speech()
    with pytest.raises(ConfigurationError, match="gpus_per_node"):
        run_distributed(
            "minato", wl, CONFIG_A, nodes=2, gpus_per_node=bad_gpus,
            steps_per_gpu=2,
        )
    with pytest.raises(ConfigurationError, match="gpus_per_node"):
        run_elastic(
            "minato", wl, CONFIG_A, ClusterMembership(2),
            gpus_per_node=bad_gpus,
        )


def test_runners_reject_unknown_topology():
    wl = tiny_speech()
    with pytest.raises(ConfigurationError, match="topology"):
        run_distributed(
            "minato", wl, CONFIG_A, nodes=2, steps_per_gpu=2, topology="torus"
        )
    with pytest.raises(ConfigurationError, match="topology"):
        run_elastic(
            "minato", wl, CONFIG_A, ClusterMembership(2), topology="torus"
        )


def test_hardware_default_gpus_per_node_is_honored():
    """HardwareConfig.gpus_per_node supplies the default; an explicit
    argument still wins."""
    wl = tiny_speech()
    hw = replace(CONFIG_A, gpus_per_node=2)
    from_hw = run_distributed(
        "minato", wl, hw, nodes=2, steps_per_gpu=3, fabric="analytic"
    )
    assert from_hw.gpus_per_node == 2
    assert from_hw.world_size == 4
    explicit = run_distributed(
        "minato", wl, hw, nodes=2, gpus_per_node=1, steps_per_gpu=3,
        fabric="analytic",
    )
    assert explicit.gpus_per_node == 1


# ---------------------------------------------------------------------------
# Satellite: per-node cache-size heterogeneity
# ---------------------------------------------------------------------------


def test_per_node_cache_fraction_override():
    """One node with a starved cache keeps missing in the second epoch of
    a block-layout run while the well-provisioned node is fully warm."""
    wl = epoch_workload(n_samples=64, epochs=2)
    starved = CONFIG_A.with_cache_fraction(0.0)
    result = run_elastic(
        "minato",
        wl,
        CONFIG_A,
        ClusterMembership(2),
        fabric="analytic",
        reshard="locality",  # fixed per-rank blocks: epoch 2 can be warm
        node_hardware={1: starved},
    )
    assert result.per_node_cache_bytes[0] > 0
    assert result.per_node_cache_bytes[1] == 0.0
    warm_epoch = result.epoch_cache_deltas[1]
    assert warm_epoch[0].miss_bytes == 0  # node 0: fully cached shard
    assert warm_epoch[1].miss_bytes > 0  # node 1: no cache to warm


def test_run_simulation_honors_hardware_cache_fraction():
    wl = tiny_speech(dataset_size=16)  # 20 iterations revisit 16 samples
    cached = run_simulation("minato", wl, CONFIG_A, 1)
    starved = run_simulation(
        "minato", wl, CONFIG_A.with_cache_fraction(0.0), 1
    )
    assert cached.cache_hit_rate > 0.0
    assert starved.cache_hit_rate == 0.0


def test_with_cache_fraction_validates():
    with pytest.raises(ConfigurationError):
        CONFIG_A.with_cache_fraction(-0.1)


# ---------------------------------------------------------------------------
# Satellite: invalidation pressure (stale bytes after a re-shard)
# ---------------------------------------------------------------------------


def stale_run(reshard):
    wl = epoch_workload(n_samples=96, epochs=3)
    membership = ClusterMembership(3, [MembershipEvent("leave", 2, epoch=1)])
    return run_elastic(
        "minato",
        wl,
        CONFIG_A,
        membership,
        fabric="analytic",
        reshard=reshard,
    )


def test_stale_bytes_reported_per_epoch_per_node():
    result = stale_run("stride")
    assert len(result.epoch_stale_bytes) == len(result.epoch_membership)
    for row, members in zip(
        result.epoch_stale_bytes, result.epoch_membership
    ):
        assert len(row) == len(members)
    # round 0: every cache starts empty, nothing can be stale
    assert result.epoch_stale_bytes[0] == [0.0] * 3
    # post-reshard: survivors still cache samples they no longer own
    assert result.epoch_stale_bytes_total[1] > 0


def test_locality_reshard_leaves_less_stale_cache_than_stride():
    """The quantity locality-preserving re-sharding also improves: what a
    survivor keeps of its old shard is exactly what does not go stale."""
    stride = stale_run("stride")
    locality = stale_run("locality")
    post = 1  # the round right after the membership change
    assert (
        locality.epoch_stale_bytes_total[post]
        < stride.epoch_stale_bytes_total[post]
    )
