"""Unit tests for the substrate-neutral policy layer (repro.policy)."""

import math

import pytest

from repro.clock import ScaledClock, ThreadLocalClock
from repro.core.profiler import TimeoutProfiler
from repro.core.scheduler import WorkerScheduler
from repro.policy import (
    FAST_KEY,
    SLOW_KEY,
    BatchConstructionPolicy,
    LoaderStatsCore,
    ReorderBuffer,
    RoutingPolicy,
    ScalingPolicy,
    SizeRouter,
    ThreadSubstrate,
    deal_batch_plan,
    deal_quota,
    index_stream,
)
from repro.policy.routing import CONTINUE, FINISH_FAST, FINISH_SLOW, HANDOFF

from .helpers import StubDataset


# ---------------------------------------------------------------------------
# RoutingPolicy: cooperative (transform-boundary) accounting
# ---------------------------------------------------------------------------


def test_cooperative_timeout_exactly_at_threshold_stays_fast():
    """The boundary is inclusive: elapsed == budget keeps fast status."""
    decision = RoutingPolicy().plan([0.05], budget=0.05)
    assert decision.status == FINISH_FAST
    assert not decision.flagged_slow
    assert decision.handoff_index is None


def test_cooperative_midway_overshoot_hands_off_at_next_boundary():
    decision = RoutingPolicy().plan([0.04, 0.04, 0.04], budget=0.05)
    assert decision.status == HANDOFF
    assert decision.flagged_slow
    # stage 1 completes (cooperative mode cannot preempt it), handoff at 2
    assert decision.handoff_index == 2
    assert decision.inline_chunks == (0.04, 0.04)
    assert decision.background_seconds == pytest.approx(0.04)


def test_cooperative_final_stage_overshoot_is_slow_complete():
    decision = RoutingPolicy().plan([0.04, 0.04], budget=0.05)
    assert decision.status == FINISH_SLOW
    assert decision.flagged_slow
    assert decision.handoff_index is None
    assert decision.inline_chunks == (0.04, 0.04)


def test_cooperative_infinite_budget_never_flags():
    decision = RoutingPolicy().plan([10.0, 10.0], budget=math.inf)
    assert decision.status == FINISH_FAST


def test_cooperative_empty_profile_is_fast():
    decision = RoutingPolicy().plan([], budget=0.0)
    assert decision.status == FINISH_FAST
    assert decision.inline_chunks == ()


def test_after_stage_verdict_table():
    after = RoutingPolicy.after_stage
    assert after(0.01, 0, 3, 0.05) == CONTINUE
    assert after(0.05, 0, 3, 0.05) == CONTINUE  # boundary inclusive
    assert after(0.06, 0, 3, 0.05) == HANDOFF
    assert after(0.05, 2, 3, 0.05) == FINISH_FAST
    assert after(0.06, 2, 3, 0.05) == FINISH_SLOW


# ---------------------------------------------------------------------------
# RoutingPolicy: preemptive (mid-transform) accounting
# ---------------------------------------------------------------------------


def test_preemptive_grace_finishes_inflight_transform_inline():
    policy = RoutingPolicy(preemptive=True, grace_abs=0.1, grace_rel=0.2)
    decision = policy.plan([0.04, 0.04, 0.04], budget=0.05)
    # overshoot 0.03 within the 0.1 s grace: stage 1 finishes inline but the
    # sample is flagged and the remaining stage runs in the background
    assert decision.status == HANDOFF
    assert decision.flagged_slow
    assert decision.handoff_index == 2
    assert decision.inline_chunks == (0.04, 0.04)


def test_preemptive_grace_on_final_stage_is_slow_complete():
    policy = RoutingPolicy(preemptive=True, grace_abs=0.1, grace_rel=0.2)
    decision = policy.plan([0.04, 0.04], budget=0.05)
    assert decision.status == FINISH_SLOW
    assert decision.handoff_index is None
    assert decision.inline_chunks == (0.04, 0.04)


def test_preemptive_fire_discards_partial_work():
    policy = RoutingPolicy(preemptive=True)  # zero grace
    decision = policy.plan([0.04, 0.04], budget=0.05)
    # the timeout fires 0.01 s into stage 1: that slack is charged inline,
    # the partial work is discarded, and stage 1 re-executes in full in the
    # background
    assert decision.status == HANDOFF
    assert decision.handoff_index == 1
    assert decision.inline_chunks == (0.04, pytest.approx(0.01))
    assert decision.background_seconds == pytest.approx(0.04)


def test_preemptive_fire_with_no_slack_charges_nothing_extra():
    policy = RoutingPolicy(preemptive=True)
    decision = policy.plan([0.08], budget=0.0)
    assert decision.status == HANDOFF
    assert decision.handoff_index == 0
    assert decision.inline_chunks == ()
    assert decision.background_seconds == pytest.approx(0.08)


def test_preemptive_timeout_exactly_at_stage_boundary_stays_fast():
    policy = RoutingPolicy(preemptive=True)
    decision = policy.plan([0.05], budget=0.05)
    assert decision.status == FINISH_FAST


def test_negative_grace_rejected():
    with pytest.raises(ValueError):
        RoutingPolicy(preemptive=True, grace_abs=-1.0)


def test_modes_agree_on_which_samples_get_flagged():
    """Cooperative and preemptive accounting flag the same samples: a sample
    is slow iff its cumulative cost ever exceeds the budget, i.e. iff its
    total cost does."""
    import numpy as np

    rng = np.random.default_rng(7)
    cooperative = RoutingPolicy()
    preemptive = RoutingPolicy(preemptive=True, grace_abs=0.1, grace_rel=0.2)
    for _ in range(200):
        n = int(rng.integers(1, 6))
        profile = list(rng.uniform(0.0, 0.2, size=n))
        budget = float(rng.uniform(0.01, 0.5))
        a = cooperative.plan(profile, budget)
        b = preemptive.plan(profile, budget)
        assert a.flagged_slow == b.flagged_slow == (sum(profile) > budget)


# ---------------------------------------------------------------------------
# BatchConstructionPolicy (Algorithm 1 construction loop)
# ---------------------------------------------------------------------------


def make_queues(fast, slow):
    fast, slow = list(fast), list(slow)
    return (lambda: fast.pop(0) if fast else None), (
        lambda: slow.pop(0) if slow else None
    )


def test_construction_prefers_fast_over_slow():
    policy = BatchConstructionPolicy()
    try_fast, try_slow = make_queues(["f1", "f2"], ["s1"])
    assert policy.next_ready(try_fast, try_slow) == "f1"
    assert policy.next_ready(try_fast, try_slow) == "f2"
    assert policy.next_ready(try_fast, try_slow) == "s1"


def test_construction_drains_slow_when_fast_empty():
    policy = BatchConstructionPolicy()
    try_fast, try_slow = make_queues([], ["s1", "s2"])
    assert policy.next_ready(try_fast, try_slow) == "s1"


def test_construction_returns_none_when_both_queues_empty():
    policy = BatchConstructionPolicy()
    try_fast, try_slow = make_queues([], [])
    assert policy.next_ready(try_fast, try_slow) is None


def test_priority_keys_order_fast_before_slow():
    assert BatchConstructionPolicy.priority_key(False) == FAST_KEY
    assert BatchConstructionPolicy.priority_key(True) == SLOW_KEY
    assert FAST_KEY < SLOW_KEY


def test_route_ready_splits_by_flag():
    policy = BatchConstructionPolicy()
    fast_sink, slow_sink = [], []
    policy.route_ready(0, "a", False, fast_sink.append, slow_sink.append)
    policy.route_ready(1, "b", True, fast_sink.append, slow_sink.append)
    assert fast_sink == ["a"] and slow_sink == ["b"]


def test_route_ready_strict_order_buffers():
    policy = BatchConstructionPolicy(strict_order=True)
    fast_sink, slow_sink = [], []
    assert policy.route_ready(0, "a", True, fast_sink.append, slow_sink.append) is None
    assert fast_sink == [] and slow_sink == []
    assert policy.next_ready(lambda: None, lambda: None) == "a"


def test_reorder_buffer_blocks_on_sequence_gaps():
    buffer = ReorderBuffer()
    buffer.put(2, "c")
    buffer.put(1, "b")
    assert buffer.try_next() is None  # seq 0 still in flight
    buffer.put(0, "a")
    assert [buffer.try_next() for _ in range(3)] == ["a", "b", "c"]
    assert buffer.try_next() is None
    assert buffer.next_sequence == 3


# ---------------------------------------------------------------------------
# Stream dealing / feeding
# ---------------------------------------------------------------------------


def test_deal_batch_plan_conserves_and_chunks():
    plan = deal_batch_plan(22, batch_size=4, num_gpus=3)
    assert sum(sum(sizes) for sizes in plan) == 22
    flat = [size for sizes in plan for size in sizes]
    assert flat.count(4) == 5 and flat.count(2) == 1
    # round-robin dealing keeps batch counts near-equal
    counts = [len(sizes) for sizes in plan]
    assert max(counts) - min(counts) <= 1


def test_deal_quota_matches_plan_row_sums():
    assert deal_quota(22, 4, 3) == [sum(s) for s in deal_batch_plan(22, 4, 3)]
    assert sum(deal_quota(101, 7, 4)) == 101


def test_index_stream_bounded_and_globally_sequenced():
    from repro.data.samplers import RandomSampler

    sampler = RandomSampler(5, seed=1)
    items = list(index_stream(sampler, epochs=2))
    assert len(items) == 10
    assert [seq for _e, seq, _i in items] == list(range(10))
    assert [e for e, _s, _i in items] == [0] * 5 + [1] * 5
    assert [i for _e, _s, i in items[:5]] == sampler.epoch(0)


def test_index_stream_infinite_cycles_epochs():
    from repro.data.samplers import RandomSampler

    sampler = RandomSampler(3, seed=1)
    stream = index_stream(sampler)
    items = [next(stream) for _ in range(7)]
    assert [e for e, _s, _i in items] == [0, 0, 0, 1, 1, 1, 2]


# ---------------------------------------------------------------------------
# ScalingPolicy (Formulas 1-2 control loop)
# ---------------------------------------------------------------------------


def make_scaling(**kwargs):
    return ScalingPolicy(
        scheduler=WorkerScheduler(
            alpha=2.0, beta=2.0, cpu_threshold=0.7, delta_clip=2, max_workers=64
        ),
        **kwargs,
    )


def test_scaling_first_observation_anchors_interval():
    policy = make_scaling()
    assert policy.observe(now=0.0, busy_seconds=0.0, queue_fill=0.0, workers=4) is None
    action = policy.observe(now=1.0, busy_seconds=4.0, queue_fill=0.0, workers=4)
    assert action is not None


def test_scaling_grows_on_empty_queues_and_busy_cpu():
    policy = make_scaling()
    policy.reset(0.0)
    # 4 workers fully busy for 1 s, batch queues empty -> add workers
    action = policy.observe(now=1.0, busy_seconds=4.0, queue_fill=0.0, workers=4)
    assert action.total_workers == 6  # delta clipped at +2
    assert action.loading_target == 6 and action.background_target is None
    assert policy.history[-1].clipped_delta == 2


def test_scaling_shrinks_on_full_queues_and_idle_cpu():
    policy = make_scaling()
    policy.reset(0.0)
    action = policy.observe(now=1.0, busy_seconds=0.0, queue_fill=1.0, workers=8)
    assert action.total_workers == 7  # delta = -1.4 -> -1
    assert policy.history[-1].clipped_delta == -1


def test_scaling_zero_interval_returns_none():
    policy = make_scaling()
    policy.reset(5.0)
    assert policy.observe(now=5.0, busy_seconds=1.0, queue_fill=0.0, workers=4) is None


def test_scaling_split_tracks_background_share():
    policy = make_scaling(split_background=True, min_background=2)
    policy.reset(0.0)
    action = policy.observe(
        now=1.0,
        busy_seconds=10.0,
        queue_fill=0.0,
        workers=10,
        background_busy_seconds=5.0,
    )
    # half the CPU work came from the background path -> half the new pool
    assert action.background_target == round(action.total_workers * 0.5)
    assert action.loading_target + action.background_target == action.total_workers


def test_scaling_split_draining_gives_background_everything():
    policy = make_scaling(split_background=True)
    policy.reset(0.0)
    action = policy.observe(
        now=1.0,
        busy_seconds=10.0,
        queue_fill=0.0,
        workers=10,
        background_busy_seconds=1.0,
        draining=True,
    )
    assert action.background_target == action.total_workers
    assert action.loading_target == 0


def test_scaling_split_never_starves_loading_path():
    """Regression: with the pool scaled to <= min_background workers, the
    min_background floor used to swallow the whole budget and leave a
    *negative* loading target (total=1 -> background=2 -> loading=-1)."""
    policy = make_scaling(split_background=True, min_background=2)
    policy.reset(0.0)
    # 1 idle worker, full queues -> Formula 1 keeps the pool at min_workers=1
    action = policy.observe(
        now=1.0,
        busy_seconds=0.0,
        queue_fill=1.0,
        workers=1,
        background_busy_seconds=0.0,
    )
    assert action.total_workers == 1
    assert action.loading_target >= 1
    assert action.background_target >= 0
    assert action.loading_target + action.background_target == action.total_workers


def test_scaling_split_loading_target_positive_across_pool_sizes():
    """Whenever loading work remains, loading keeps >= 1 worker at every
    reachable pool size and background share."""
    for workers in (1, 2, 3, 5, 10):
        for background_busy in (0.0, 0.5, 1.0):
            policy = make_scaling(split_background=True, min_background=2)
            policy.reset(0.0)
            busy = float(workers)
            action = policy.observe(
                now=1.0,
                busy_seconds=busy,
                queue_fill=0.5,
                workers=workers,
                background_busy_seconds=busy * background_busy,
            )
            assert action.loading_target >= 1, (workers, background_busy)
            assert action.background_target >= 0
            assert (
                action.loading_target + action.background_target
                == action.total_workers
            )


def test_scaling_profiler_surface():
    profiler = TimeoutProfiler(warmup_samples=2, override=0.25)
    policy = make_scaling(profiler=profiler)
    policy.record_sample(0.1)
    policy.record_sample(0.3, flagged_slow=True)
    assert profiler.observations == 2
    assert policy.timeout() == 0.25


def test_scaling_without_profiler_rejects_timeout():
    with pytest.raises(RuntimeError):
        make_scaling().timeout()


# ---------------------------------------------------------------------------
# LoaderStatsCore / SizeRouter / substrates
# ---------------------------------------------------------------------------


def test_stats_core_add_and_snapshot():
    stats = LoaderStatsCore()
    stats.add(samples_fast=2, busy_seconds=0.5)
    stats.add(samples_timed_out=1, samples_preprocessed=3)
    snap = stats.snapshot()
    assert snap["samples_fast"] == 2
    assert snap["busy_seconds"] == pytest.approx(0.5)
    assert stats.slow_fraction == pytest.approx(1 / 3)


def test_stats_core_rejects_unknown_counter():
    with pytest.raises(ValueError):
        LoaderStatsCore().add(bogus=1)


def test_size_router_threshold_from_dataset():
    ds = StubDataset([0.01] * 8)  # raw_nbytes 1024 each
    router = SizeRouter.from_dataset(ds)
    assert router.threshold_bytes == 1024.0
    assert not router.is_slow(1024)  # boundary is exclusive
    assert router.is_slow(1025)


def test_thread_substrate_reports_timeline_sharing():
    assert not ThreadSubstrate(ThreadLocalClock()).shared_timeline
    assert ThreadSubstrate(ScaledClock(0.5)).shared_timeline


def test_thread_substrate_lock_is_real():
    lock = ThreadSubstrate(ThreadLocalClock()).make_lock()
    with lock:
        assert not lock.acquire(blocking=False)
