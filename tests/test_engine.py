"""Tests for the training engine: devices, metrics, step models, trainer."""

import threading

import pytest

from repro.clock import ScaledClock, ThreadLocalClock
from repro.core import MinatoConfig, MinatoLoader
from repro.engine import (
    MODELS,
    IntervalRecorder,
    SimulatedGPU,
    StepTimeModel,
    ThroughputMeter,
    Trainer,
    average_utilization,
    utilization_series,
)
from repro.errors import ConfigurationError

from .helpers import mixed_cost_dataset, stub_pipeline


# ---------------------------------------------------------------------------
# SimulatedGPU
# ---------------------------------------------------------------------------


def test_gpu_execute_charges_clock():
    clock = ScaledClock(scale=0.02)
    gpu = SimulatedGPU(0, clock)
    start, end = gpu.execute(0.5, tag="train")
    # sleeps never undershoot; allow generous overshoot for CI noise
    assert 0.45 <= end - start <= 3.0
    assert gpu.busy_seconds("train") == pytest.approx(end - start)


def test_gpu_rejects_negative_work():
    gpu = SimulatedGPU(0, ScaledClock(0.001))
    with pytest.raises(ValueError):
        gpu.execute(-1)


def test_gpu_serializes_concurrent_work():
    clock = ScaledClock(scale=0.02)
    gpu = SimulatedGPU(0, clock)

    def work():
        gpu.execute(0.2, tag="a")

    threads = [threading.Thread(target=work) for _ in range(4)]
    t0 = clock.now()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = clock.now() - t0
    # serialized: 4 x 0.2 = 0.8 virtual seconds (lower bound only)
    assert elapsed >= 0.75
    intervals = sorted(gpu.intervals, key=lambda i: i.start)
    for a, b in zip(intervals, intervals[1:]):
        assert b.start >= a.end - 1e-6  # no overlap


def test_gpu_utilization_window():
    clock = ScaledClock(scale=0.02)
    gpu = SimulatedGPU(0, clock)
    gpu.execute(0.5)
    clock.sleep(0.5)
    end = clock.now()
    util = gpu.utilization(0.0, end)
    assert 0.2 < util < 0.8


def test_gpu_utilization_by_tag():
    clock = ScaledClock(scale=0.02)
    gpu = SimulatedGPU(0, clock)
    gpu.execute(0.2, tag="train")
    gpu.execute(0.2, tag="preprocess")
    end = clock.now()
    total = gpu.utilization(0.0, end)
    train_only = gpu.utilization(0.0, end, tag="train")
    assert total > train_only


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_interval_recorder_and_average_utilization():
    rec = IntervalRecorder("cpu")
    rec.record(0.0, 1.0)
    rec.record(2.0, 3.0)
    assert rec.busy_seconds() == pytest.approx(2.0)
    assert average_utilization(rec.intervals, 0.0, 4.0) == pytest.approx(0.5)


def test_average_utilization_with_capacity():
    rec = IntervalRecorder()
    rec.record(0.0, 4.0)
    rec.record(0.0, 4.0)
    # two busy units over a capacity of 4 cores
    assert average_utilization(rec.intervals, 0.0, 4.0, capacity=4) == pytest.approx(0.5)


def test_interval_recorder_rejects_inverted_interval():
    rec = IntervalRecorder()
    with pytest.raises(ValueError):
        rec.record(2.0, 1.0)


def test_utilization_series_buckets():
    rec = IntervalRecorder()
    rec.record(0.0, 1.0)
    rec.record(2.5, 3.0)
    series = utilization_series(rec.intervals, 0.0, 4.0, bucket=1.0)
    values = dict(series)
    assert values[0.0] == pytest.approx(1.0)
    assert values[1.0] == pytest.approx(0.0)
    assert values[2.0] == pytest.approx(0.5)


def test_utilization_series_validates_bucket():
    with pytest.raises(ValueError):
        utilization_series([], 0, 1, bucket=0)


def test_throughput_meter_series_and_average():
    meter = ThroughputMeter()
    meter.record(0.5, 100)
    meter.record(1.5, 300)
    assert meter.total_bytes() == 400
    series = dict(meter.series(bucket=1.0))
    assert series[0.0] == pytest.approx(100.0)
    assert series[1.0] == pytest.approx(300.0)
    assert meter.average_rate(0.0, 2.0) == pytest.approx(200.0)


# ---------------------------------------------------------------------------
# Step-time models
# ---------------------------------------------------------------------------


def test_models_registry_contains_paper_workloads():
    assert set(MODELS) == {"unet3d", "maskrcnn", "rnnt"}


def test_step_time_scales_linearly_with_batch():
    model = MODELS["unet3d"]
    t3 = model.step_time(3, "a100")
    t6 = model.step_time(6, "a100")
    assert t6 == pytest.approx(2 * t3)


def test_step_time_v100_slower_than_a100():
    for model in MODELS.values():
        assert model.step_time(8, "v100") > model.step_time(8, "a100")


def test_step_time_adds_sync_for_multi_gpu():
    model = MODELS["rnnt"]
    single = model.step_time(24, "a100", world_size=1)
    multi = model.step_time(24, "a100", world_size=4)
    assert multi == pytest.approx(single + model.sync_seconds)


def test_step_time_validates_inputs():
    model = StepTimeModel(name="m", reference_batch=4, step_seconds={"a100": 0.1})
    with pytest.raises(ConfigurationError):
        model.step_time(4, "tpu")
    with pytest.raises(ConfigurationError):
        model.step_time(0, "a100")


# ---------------------------------------------------------------------------
# Trainer integration
# ---------------------------------------------------------------------------


def run_minato_training(num_gpus=1, n_samples=24, max_batches=None):
    clock = ScaledClock(scale=0.002)
    ds = mixed_cost_dataset(n_samples, fast_cost=0.02, slow_cost=0.2, slow_period=6)
    cfg = MinatoConfig(
        batch_size=4,
        num_workers=4,
        num_gpus=num_gpus,
        warmup_samples=4,
        timeout_override=0.05,
        adaptive_workers=False,
    )
    loader = MinatoLoader(ds, stub_pipeline(2), cfg, clock=clock)
    devices = [SimulatedGPU(g, clock) for g in range(num_gpus)]
    model = StepTimeModel(name="toy", reference_batch=4, step_seconds={"a100": 0.05})
    trainer = Trainer(
        loader, devices, model, gpu_type="a100", max_batches_per_gpu=max_batches
    )
    return trainer.run()


def test_trainer_consumes_whole_stream():
    result = run_minato_training()
    assert result.samples == 24
    assert result.batches == 6
    assert result.trained_bytes > 0
    assert result.wall_seconds > 0


def test_trainer_multi_gpu_splits_work():
    result = run_minato_training(num_gpus=2, n_samples=32)
    assert result.samples == 32
    assert len(result.gpu_utilization) == 2
    assert all(0 <= u <= 1 for u in result.gpu_utilization)


def test_trainer_respects_max_batches():
    result = run_minato_training(n_samples=40, max_batches=3)
    assert result.batches == 3
    assert result.samples == 12


def test_trainer_requires_devices():
    with pytest.raises(ValueError):
        Trainer(None, [], MODELS["unet3d"])


def test_trainer_throughput_positive():
    result = run_minato_training()
    assert result.throughput_mb_per_s > 0
    assert result.mean_gpu_utilization > 0
