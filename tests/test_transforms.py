"""Tests for the transform framework and the three workload pipelines."""

import numpy as np
import pytest

from repro.clock import ThreadLocalClock
from repro.data import SyntheticCOCO, SyntheticKiTS19, SyntheticLibriSpeech
from repro.data.sample import Sample, SampleSpec
from repro.errors import ConfigurationError
from repro.transforms import (
    LIGHT_TOTAL_SECONDS,
    HeavyStep,
    LightStep,
    Pipeline,
    RandomCrop3D,
    Resize2D,
    WorkContext,
    detection_pipeline,
    segmentation_pipeline,
    speech_pipeline,
)
from repro.transforms.base import PipelineState

MB = 1024 * 1024


def make_ctx(seed=0):
    return WorkContext(clock=ThreadLocalClock(), rng=np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# Pipeline basics
# ---------------------------------------------------------------------------


def test_pipeline_requires_transforms():
    with pytest.raises(ConfigurationError):
        Pipeline([])


def test_cost_profile_is_deterministic():
    ds = SyntheticKiTS19(n_samples=4)
    pipe = segmentation_pipeline()
    spec = ds.spec(0)
    assert pipe.cost_profile(spec) == pipe.cost_profile(spec)


def test_total_cost_equals_profile_sum():
    ds = SyntheticCOCO(n_samples=4)
    pipe = detection_pipeline()
    spec = ds.spec(2)
    assert pipe.total_cost(spec) == pytest.approx(sum(pipe.cost_profile(spec)))


def test_reordered_rejects_bad_permutation():
    pipe = detection_pipeline()
    with pytest.raises(ConfigurationError):
        pipe.reordered([0, 1, 1, 2])


def test_reordered_permutes_names():
    pipe = detection_pipeline()
    reordered = pipe.reordered([3, 2, 1, 0])
    assert reordered.names == list(reversed(pipe.names))


def test_apply_all_runs_every_transform_and_charges_clock():
    ds = SyntheticKiTS19(n_samples=2)
    pipe = segmentation_pipeline()
    sample = ds.load(0)
    ctx = make_ctx()
    out = pipe.apply_all(sample, ctx)
    assert out.applied == pipe.names
    assert ctx.charged_seconds == pytest.approx(pipe.total_cost(sample.spec))
    assert out.preprocess_seconds == pytest.approx(pipe.total_cost(sample.spec))


def test_apply_all_resume_from_middle_matches_cost_model():
    ds = SyntheticLibriSpeech(n_samples=6)
    pipe = speech_pipeline(3.0)
    sample = ds.load(0)  # index 0 is heavy
    ctx = make_ctx()
    # apply the first three, then resume
    state = pipe.initial_state(sample.spec)
    for i in range(3):
        sample = pipe[i].apply(sample, ctx, state)
    pipe.apply_all(sample, ctx, start=3)
    assert sample.applied == pipe.names
    assert ctx.charged_seconds == pytest.approx(pipe.total_cost(sample.spec))


def test_size_trace_monotonic_bookkeeping():
    ds = SyntheticLibriSpeech(n_samples=3)
    pipe = speech_pipeline(3.0)
    trace = pipe.size_trace(ds.spec(1))
    assert len(trace) == len(pipe)
    # FilterBank inflates by 16x
    assert trace[2] > trace[1] * 10


# ---------------------------------------------------------------------------
# Image segmentation pipeline
# ---------------------------------------------------------------------------


def test_segmentation_cost_scales_with_raw_size():
    pipe = segmentation_pipeline()
    small = SampleSpec(index=0, raw_nbytes=40 * MB, seed=7, modality="image3d")
    large = SampleSpec(index=1, raw_nbytes=300 * MB, seed=7, modality="image3d")
    assert pipe.total_cost(large) > 2.0 * pipe.total_cost(small)


def test_segmentation_tiny_samples_are_fast():
    pipe = segmentation_pipeline()
    normal = SampleSpec(index=0, raw_nbytes=136 * MB, seed=3, modality="image3d")
    tiny = SampleSpec(
        index=0, raw_nbytes=136 * MB, seed=3, modality="image3d", attrs={"tiny": 1.0}
    )
    assert pipe.total_cost(tiny) < 0.05 * pipe.total_cost(normal)


def test_segmentation_output_standardized_to_10mb():
    ds = SyntheticKiTS19(n_samples=3)
    pipe = segmentation_pipeline()
    for spec in ds.specs():
        assert pipe.output_nbytes(spec) == 10 * MB


def test_random_crop_reduces_volume():
    ds = SyntheticKiTS19(n_samples=1)
    sample = ds.load(0)
    original_size = sample.data.size
    crop = RandomCrop3D(crop_fraction=0.5)
    state = PipelineState(nbytes=float(sample.spec.raw_nbytes))
    out = crop.apply(sample, make_ctx(), state)
    assert out.data.size < original_size


def test_random_crop_rejects_bad_fraction():
    with pytest.raises(ValueError):
        RandomCrop3D(crop_fraction=0.0)


def test_segmentation_real_execution_produces_float32():
    ds = SyntheticKiTS19(n_samples=1)
    pipe = segmentation_pipeline()
    out = pipe.apply_all(ds.load(0), make_ctx())
    assert out.data.dtype == np.float32


# ---------------------------------------------------------------------------
# Object detection pipeline
# ---------------------------------------------------------------------------


def test_detection_cost_mostly_independent_of_size():
    """Paper §3.2: image size does not predict preprocessing time."""
    ds = SyntheticCOCO(n_samples=500)
    pipe = detection_pipeline()
    sizes = np.array([s.raw_nbytes for s in ds.specs()], dtype=float)
    costs = np.array([pipe.total_cost(s) for s in ds.specs()])
    corr = np.corrcoef(sizes, costs)[0, 1]
    assert abs(corr) < 0.2


def test_detection_has_rare_outliers():
    ds = SyntheticCOCO(n_samples=2000)
    pipe = detection_pipeline()
    costs = np.array([pipe.total_cost(s) for s in ds.specs()])
    outliers = (costs > 2.5 * np.median(costs)).mean()
    assert 0.01 < outliers < 0.06


def test_resize_changes_resolution():
    ds = SyntheticCOCO(n_samples=1)
    sample = ds.load(0)
    resize = Resize2D(height=16, width=24)
    state = PipelineState(nbytes=float(sample.spec.raw_nbytes))
    out = resize.apply(sample, make_ctx(), state)
    assert out.data.shape[:2] == (16, 24)


def test_detection_full_pipeline_produces_chw_float():
    ds = SyntheticCOCO(n_samples=1)
    pipe = detection_pipeline()
    out = pipe.apply_all(ds.load(0), make_ctx())
    assert out.data.ndim == 3
    assert out.data.shape[0] == 3  # CHW
    assert out.data.dtype == np.float32


def test_detection_output_in_expected_band():
    ds = SyntheticCOCO(n_samples=50)
    pipe = detection_pipeline()
    sizes = [pipe.output_nbytes(s) / MB for s in ds.specs()]
    assert 3.9 <= min(sizes) and max(sizes) <= 12.1
    assert 6.0 < float(np.mean(sizes)) < 8.5


# ---------------------------------------------------------------------------
# Speech pipeline
# ---------------------------------------------------------------------------


def test_speech_light_samples_cost_about_half_second():
    ds = SyntheticLibriSpeech(n_samples=10)
    pipe = speech_pipeline(3.0)
    light = [s for s in ds.specs() if not s.attr("heavy")]
    for spec in light[:3]:
        assert 0.5 <= pipe.total_cost(spec) <= 0.52


def test_speech_heavy_samples_reach_heavy_total():
    ds = SyntheticLibriSpeech(n_samples=10)
    pipe = speech_pipeline(3.0)
    heavy = [s for s in ds.specs() if s.attr("heavy")]
    for spec in heavy:
        assert 3.0 <= pipe.total_cost(spec) <= 3.02


def test_speech_10s_variant():
    ds = SyntheticLibriSpeech(n_samples=10)
    pipe = speech_pipeline(10.0)
    heavy_spec = ds.spec(0)
    assert heavy_spec.attr("heavy")
    assert 10.0 <= pipe.total_cost(heavy_spec) <= 10.02


def test_heavystep_free_on_light_samples():
    step = HeavyStep(heavy_seconds=3.0)
    light = SampleSpec(index=1, raw_nbytes=MB, seed=1, modality="audio")
    assert step.cost(light, PipelineState(nbytes=MB)) == 0.0


def test_heavystep_rejects_sub_light_budget():
    with pytest.raises(ValueError):
        HeavyStep(heavy_seconds=LIGHT_TOTAL_SECONDS / 2)


def test_lightstep_identity_on_payload():
    ds = SyntheticLibriSpeech(n_samples=1)
    sample = ds.load(0)
    payload = sample.data
    step = LightStep()
    out = step.apply(sample, make_ctx(), PipelineState(nbytes=float(sample.nbytes)))
    assert out.data is payload


def test_speech_full_pipeline_runs():
    ds = SyntheticLibriSpeech(n_samples=2)
    pipe = speech_pipeline(3.0)
    out = pipe.apply_all(ds.load(1), make_ctx())
    assert out.data.ndim == 2
    assert out.applied == pipe.names
