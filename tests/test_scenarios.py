"""Multi-tenant scenario engine: mix validation, preset behaviour,
cross-tenant contention, and partition stall-and-heal semantics."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.sim.cluster import (
    Cluster,
    ClusterMembership,
    MembershipEvent,
    PartitionEvent,
)
from repro.sim.distributed import (
    AllReduceModel,
    _MemberBarrier,
    run_distributed,
    run_elastic,
)
from repro.sim.kernel import Environment
from repro.sim.scenarios import (
    PRESETS,
    JobMix,
    JobSpec,
    preset_steady,
    run_preset,
)
from repro.sim.workloads import CONFIG_A, make_workload

NODES = 4
GPUS = 2


def _cluster(membership=None, **kwargs):
    return Cluster(
        membership if membership is not None else ClusterMembership(NODES),
        CONFIG_A,
        gpus_per_node=GPUS,
        **kwargs,
    )


def _spec(job_id="job0", **overrides):
    kwargs = dict(
        job_id=job_id,
        loader="minato",
        workload_name="image_segmentation",
        dataset_size=6 * NODES,
        total_steps=2 * NODES * GPUS,
        fabric="ring",
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


# ---------------------------------------------------------------------------
# Mix validation (the shared helper every entry point uses)
# ---------------------------------------------------------------------------


def test_empty_mix_rejected():
    with pytest.raises(ConfigurationError, match="empty"):
        JobMix([], _cluster())


def test_duplicate_job_ids_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        JobMix([_spec("a"), _spec("a")], _cluster())


def test_negative_priority_rejected():
    with pytest.raises(ConfigurationError, match="priority"):
        JobMix([_spec(priority=-1)], _cluster())


def test_negative_arrival_rejected():
    with pytest.raises(ConfigurationError, match="arrival"):
        JobMix([_spec(arrival=-0.5)], _cluster())


def test_blank_job_id_rejected():
    with pytest.raises(ConfigurationError, match="job_id"):
        JobMix([_spec(job_id="")], _cluster())


def test_mix_requires_cluster():
    with pytest.raises(ConfigurationError, match="Cluster"):
        JobMix([_spec()], cluster=None)


def test_unknown_preset_rejected():
    with pytest.raises(ConfigurationError, match="unknown preset"):
        run_preset("nope")


def test_nonpositive_scale_rejected():
    with pytest.raises(ConfigurationError, match="scale"):
        run_preset("steady", scale=0.0)


# ---------------------------------------------------------------------------
# Cluster-owned argument validation (run_elastic / run_distributed share it)
# ---------------------------------------------------------------------------


def _workload():
    return make_workload("image_segmentation", dataset_size=6 * NODES)


def test_run_elastic_rejects_queue_with_cluster():
    with pytest.raises(ConfigurationError, match="queue"):
        run_elastic(
            "minato", _workload(), CONFIG_A, cluster=_cluster(),
            total_steps=NODES * GPUS, queue="heap",
        )


def test_run_elastic_rejects_node_hardware_with_cluster():
    with pytest.raises(ConfigurationError, match="node_hardware"):
        run_elastic(
            "minato", _workload(), CONFIG_A, cluster=_cluster(),
            total_steps=NODES * GPUS, node_hardware={0: CONFIG_A},
        )


def test_run_elastic_rejects_foreign_membership_with_cluster():
    with pytest.raises(ConfigurationError, match="membership"):
        run_elastic(
            "minato", _workload(), CONFIG_A, ClusterMembership(NODES),
            cluster=_cluster(), total_steps=NODES * GPUS,
        )


def test_run_elastic_rejects_conflicting_gpus_with_cluster():
    with pytest.raises(ConfigurationError, match="gpus_per_node"):
        run_elastic(
            "minato", _workload(), CONFIG_A, cluster=_cluster(),
            gpus_per_node=GPUS + 1, total_steps=NODES * GPUS,
        )


def test_run_elastic_rejects_foreign_link_params_on_shared_cluster():
    with pytest.raises(ConfigurationError, match="cluster-owned"):
        run_elastic(
            "minato", _workload(), CONFIG_A, cluster=_cluster(),
            allreduce=AllReduceModel(latency=0.5),
            total_steps=NODES * GPUS,
        )


def test_run_elastic_requires_membership_or_cluster():
    with pytest.raises(ConfigurationError, match="ClusterMembership"):
        run_elastic("minato", _workload(), CONFIG_A, total_steps=NODES * GPUS)


def test_run_distributed_rejects_mismatched_nodes_with_cluster():
    with pytest.raises(ConfigurationError, match="initial nodes"):
        run_distributed(
            "minato", _workload(), CONFIG_A, nodes=NODES + 1,
            cluster=_cluster(), steps_per_gpu=1,
        )


def test_partitions_require_ring_fabric():
    membership = ClusterMembership(
        NODES, partitions=(PartitionEvent(nodes=(0,), time=0.1, duration=0.5),)
    )
    with pytest.raises(ConfigurationError, match="ring"):
        run_elastic(
            "minato", _workload(), CONFIG_A, membership,
            gpus_per_node=GPUS, fabric="analytic", total_steps=NODES * GPUS,
        )


def test_partition_event_validation():
    with pytest.raises(ConfigurationError, match="at least one"):
        PartitionEvent(nodes=(), time=0.0, duration=1.0)
    with pytest.raises(ConfigurationError, match="unique"):
        PartitionEvent(nodes=(1, 1), time=0.0, duration=1.0)
    with pytest.raises(ConfigurationError, match="duration"):
        PartitionEvent(nodes=(0,), time=0.0, duration=0.0)
    with pytest.raises(ConfigurationError, match="time"):
        PartitionEvent(nodes=(0,), time=-1.0, duration=1.0)
    with pytest.raises(ConfigurationError, match="unknown"):
        ClusterMembership(
            2, partitions=(PartitionEvent(nodes=(7,), time=0.0, duration=1.0),)
        )


def test_partition_release_chains_overlapping_windows():
    membership = ClusterMembership(
        4,
        partitions=(
            PartitionEvent(nodes=(0, 1), time=1.0, duration=1.0),
            PartitionEvent(nodes=(0,), time=1.5, duration=1.0),
        ),
    )
    # inside the first window, the overlapping second window extends the
    # stall: release is the fixpoint over the chain, not the first end
    assert membership.partition_release(1.2, 0, 2) == pytest.approx(2.5)
    # nodes on the same side of every cut never stall
    assert membership.partition_release(1.2, 2, 3) == 1.2
    # after every window closes, delivery is immediate
    assert membership.partition_release(3.0, 0, 2) == 3.0


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_presets_run_and_complete(name):
    mix_result = run_preset(name, scale=0.25)
    assert mix_result.jobs, name
    for res in mix_result.jobs:
        assert res.steps > 0, f"{name}/{res.job_id} made no progress"
        assert res.samples > 0
    assert mix_result.makespan > 0
    assert mix_result.makespan == pytest.approx(
        max(mix_result.per_job_makespan.values())
    )
    # the summary is one line per job plus a mix line
    assert len(mix_result.summary().splitlines()) == len(mix_result.jobs) + 1


def test_result_summary_is_compact():
    res = run_preset("steady", scale=0.25).jobs[0]
    line = res.summary()
    assert "\n" not in line
    assert res.job_id in line and res.loader in line


def test_burst_jobs_start_at_their_arrivals():
    mix_result = run_preset("burst", scale=0.25)
    # a staggered job's completion time includes its arrival offset
    for res in mix_result.jobs:
        arrival = mix_result.arrivals[res.job_id]
        assert mix_result.per_job_makespan[res.job_id] == pytest.approx(
            arrival + res.training_time
        )
    assert mix_result.arrivals["tenant-b"] > 0
    assert mix_result.arrivals["tenant-c"] > mix_result.arrivals["tenant-b"]


def test_two_tenants_strictly_slower_than_solo():
    """The acceptance gate: sharing a cluster must cost each tenant
    wall-clock versus the same job alone on an identical private one."""
    shared = preset_steady(1.0).run()
    for spec in preset_steady(1.0).jobs:
        solo_spec = JobSpec(**{**spec.__dict__, "arrival": 0.0})
        alone = JobMix(
            [solo_spec],
            Cluster(
                ClusterMembership(NODES), CONFIG_A,
                gpus_per_node=GPUS, topology="flat",
            ),
        ).run().jobs[0]
        both = shared.job(spec.job_id)
        assert both.training_time > alone.training_time, (
            f"{spec.job_id}: no contention visible "
            f"({both.training_time} vs {alone.training_time})"
        )
    assert shared.link_contention_seconds > 0


def test_tenant_caches_are_namespaced():
    mix = preset_steady(0.25)
    mix.run()
    cache = mix.cluster.site(0).cache
    namespaces = {
        key[0] for key in cache._entries if isinstance(key, tuple)
    }
    assert namespaces == {"tenant-a", "tenant-b"}


def test_shared_cluster_disables_collapse():
    mix = preset_steady(0.25)
    result = mix.run()
    assert mix.cluster.shared
    for res in result.jobs:
        assert res.collapsed_collectives == 0


# ---------------------------------------------------------------------------
# Partition semantics
# ---------------------------------------------------------------------------


def _partition_membership(duration=1.0, time=0.5):
    return ClusterMembership(
        NODES,
        partitions=(
            PartitionEvent(nodes=(0, 1), time=time, duration=duration),
        ),
    )


def test_partition_stalls_and_heals_single_job():
    baseline = run_elastic(
        "minato", _workload(), CONFIG_A, ClusterMembership(NODES),
        gpus_per_node=GPUS, fabric="ring", total_steps=4 * NODES * GPUS,
    )
    partitioned = run_elastic(
        "minato", _workload(), CONFIG_A, _partition_membership(),
        gpus_per_node=GPUS, fabric="ring", total_steps=4 * NODES * GPUS,
    )
    assert partitioned.partition_stall_seconds > 0
    assert partitioned.training_time > baseline.training_time
    assert partitioned.steps == baseline.steps
    assert partitioned.samples == baseline.samples


def test_partition_then_heal_never_deadlocks():
    """Watchdog-guarded: the partitioned mix must finish, not hang.  A
    stalled delivery is released at the window's heal time, so the run
    completes in bounded virtual (and wall) time."""
    outcome = {}

    def target():
        try:
            outcome["result"] = run_preset("network_partition", scale=0.25)
        except BaseException as exc:  # noqa: BLE001 - report into the test
            outcome["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout=60)
    if thread.is_alive():
        pytest.fail("network_partition mix did not finish within 60s")
    assert "error" not in outcome, outcome.get("error")
    mix_result = outcome["result"]
    assert sum(r.partition_stall_seconds for r in mix_result.jobs) > 0
    for res in mix_result.jobs:
        assert res.steps > 0


def test_no_shard_double_coverage_across_partition():
    """A partition is a connectivity event, not a membership event: the
    re-shard never assigns one sample to two nodes in any round, before,
    during, or after the window."""
    result = run_elastic(
        "minato", _workload(), CONFIG_A, _partition_membership(),
        gpus_per_node=GPUS, fabric="ring", epochs=3,
    )
    n = len(_workload().dataset)
    for row, sizes, coverage in zip(
        result.epoch_membership,
        result.epoch_shard_sizes,
        result.epoch_coverage,
    ):
        assert len(row) == len(set(row)), "node listed twice in a round"
        # equal-length disjoint shards cover the dataset exactly once per
        # epoch (wrap-around padding may re-read, but distinct coverage
        # can never exceed the dataset)
        assert coverage <= n
        assert sum(sizes) >= n
    # every epoch fully covered: the partition stalled traffic but lost
    # no data
    assert all(c == n for c in result.epoch_coverage)


def test_partition_outcome_independent_of_kernel_config():
    """Partition stalls are modelled timing, not scheduling accidents:
    exact-heap and indexed-queue kernels agree bit-for-bit."""
    kwargs = dict(
        gpus_per_node=GPUS, fabric="ring", total_steps=2 * NODES * GPUS,
    )
    heap = run_elastic(
        "minato", _workload(), CONFIG_A, _partition_membership(),
        queue="heap", **kwargs,
    )
    indexed = run_elastic(
        "minato", _workload(), CONFIG_A, _partition_membership(), **kwargs
    )
    fields_heap = dict(vars(heap))
    fields_indexed = dict(vars(indexed))
    for name in ("collapsed_collectives", "sim_events"):
        fields_heap.pop(name)
        fields_indexed.pop(name)
    assert fields_heap == fields_indexed


# ---------------------------------------------------------------------------
# Barrier arrival accounting (a removed rank's past arrival must not count)
# ---------------------------------------------------------------------------


def test_barrier_removed_member_past_arrival_not_double_counted():
    env = Environment()
    barrier = _MemberBarrier(env)
    barrier.set_members({"a", "b"})
    done = []

    def proc():
        event = barrier.arrive("step0", "a")
        barrier.remove("a")
        # a's past arrival released step0 (b alone remains and has not
        # arrived, but the member set no longer includes a)
        assert not event.triggered
        barrier.set_members({"a", "b"})
        # re-adding a must NOT reuse its old arrival: a fresh key needs
        # both members again
        second = barrier.arrive("step1", "b")
        assert not second.triggered
        final = barrier.arrive("step1", "a")
        assert final.triggered
        done.append(True)
        yield env.timeout(0)

    env.process(proc())
    env.run()
    assert done


def test_barrier_remove_releases_now_satisfied_steps():
    env = Environment()
    barrier = _MemberBarrier(env)
    barrier.set_members({"a", "b"})
    done = []

    def proc():
        event = barrier.arrive("step0", "a")
        assert not event.triggered
        barrier.remove("b")
        assert event.triggered
        done.append(True)
        yield env.timeout(0)

    env.process(proc())
    env.run()
    assert done


# ---------------------------------------------------------------------------
# Remote storage over the NIC
# ---------------------------------------------------------------------------


def test_storage_over_nic_adds_link_contention():
    """Routing cache-miss reads over the NIC makes loader traffic and
    collectives contend: the run gets slower and the collectives queue."""
    def go(storage_over_nic):
        cluster = _cluster(storage_over_nic=storage_over_nic)
        result = JobMix([_spec(total_steps=4 * NODES * GPUS)], cluster).run()
        nic_bytes = sum(
            pipe.total_bytes
            for pipe in cluster.topology._links.values()
        )
        return result.jobs[0], nic_bytes

    local, local_nic_bytes = go(False)
    remote, remote_nic_bytes = go(True)
    assert remote.training_time > local.training_time
    # the same collective traffic flows either way; the remote regime adds
    # every cache-miss byte on top of it
    assert remote_nic_bytes >= local_nic_bytes + remote.cache_miss_bytes
