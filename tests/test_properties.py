"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import sparkline
from repro.core import TimeoutProfiler, WorkerScheduler
from repro.data import PageCache, RandomSampler, BatchSampler
from repro.data.sample import SampleSpec
from repro.engine.accuracy import dice_score
from repro.engine.metrics import IntervalRecorder, utilization_series
from repro.sim import Environment, Store
from repro.sim.loaders import _deal_batch_plan
from tests.helpers import StubDataset, stub_pipeline

# ---------------------------------------------------------------------------
# PageCache invariants
# ---------------------------------------------------------------------------


@given(
    capacity=st.integers(min_value=1, max_value=1000),
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=1, max_value=400),
        ),
        max_size=200,
    ),
)
def test_page_cache_never_exceeds_capacity(capacity, accesses):
    cache = PageCache(capacity_bytes=capacity)
    for key, nbytes in accesses:
        cache.access(key, nbytes)
        assert cache.used_bytes <= capacity
    assert cache.hits + cache.misses == len(accesses)


@given(
    accesses=st.lists(
        st.integers(min_value=0, max_value=10), min_size=1, max_size=100
    )
)
def test_page_cache_everything_fits_second_access_hits(accesses):
    cache = PageCache(capacity_bytes=10**9)
    seen = set()
    for key in accesses:
        hit = cache.access(key, 10)
        assert hit == (key in seen)
        seen.add(key)


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------


@given(
    n=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**16),
    epoch=st.integers(min_value=0, max_value=20),
)
def test_random_sampler_epoch_is_permutation(n, seed, epoch):
    sampler = RandomSampler(n, seed=seed)
    assert sorted(sampler.epoch(epoch)) == list(range(n))


@given(
    n=st.integers(min_value=1, max_value=200),
    batch=st.integers(min_value=1, max_value=32),
    drop_last=st.booleans(),
)
def test_batch_sampler_partitions(n, batch, drop_last):
    sampler = BatchSampler(RandomSampler(n, seed=1), batch, drop_last=drop_last)
    batches = sampler.epoch(0)
    flat = [i for b in batches for i in b]
    if drop_last:
        assert all(len(b) == batch for b in batches)
        assert len(flat) == (n // batch) * batch
    else:
        assert sorted(flat) == list(range(n))
    assert len(batches) == len(sampler)


# ---------------------------------------------------------------------------
# Worker scheduler (Formulas 1-2)
# ---------------------------------------------------------------------------


@given(
    workers=st.integers(min_value=1, max_value=256),
    fill=st.floats(min_value=-2, max_value=3, allow_nan=False),
    usage=st.floats(min_value=-2, max_value=3, allow_nan=False),
)
def test_scheduler_output_always_in_bounds(workers, fill, usage):
    scheduler = WorkerScheduler(min_workers=2, max_workers=64, delta_clip=2)
    decision = scheduler.decide(workers, fill, usage)
    assert 2 <= decision.new_workers <= 64
    assert abs(decision.clipped_delta) <= 2


@given(
    fill_low=st.floats(min_value=0, max_value=1),
    fill_high=st.floats(min_value=0, max_value=1),
    usage=st.floats(min_value=0, max_value=1),
)
def test_scheduler_monotone_in_queue_fill(fill_low, fill_high, usage):
    """Emptier queues never yield fewer workers."""
    if fill_low > fill_high:
        fill_low, fill_high = fill_high, fill_low
    scheduler = WorkerScheduler(max_workers=128)
    low = scheduler.decide(32, fill_low, usage)
    high = scheduler.decide(32, fill_high, usage)
    assert low.new_workers >= high.new_workers


# ---------------------------------------------------------------------------
# Profiler percentile properties
# ---------------------------------------------------------------------------


@given(
    times=st.lists(
        st.floats(min_value=1e-4, max_value=100, allow_nan=False),
        min_size=20,
        max_size=300,
    )
)
def test_profiler_timeout_within_observed_range(times):
    profiler = TimeoutProfiler(warmup_samples=10)
    for t in times:
        profiler.record(t)
    timeout = profiler.timeout()
    assert min(times) - 1e-9 <= timeout <= max(times) + 1e-9


@given(
    times=st.lists(
        st.floats(min_value=0.001, max_value=10, allow_nan=False),
        min_size=30,
        max_size=200,
    )
)
def test_profiler_p90_at_least_p75(times):
    p75 = TimeoutProfiler(percentile=75, warmup_samples=10)
    p90 = TimeoutProfiler(percentile=90, warmup_samples=10)
    for t in times:
        p75.record(t)
        p90.record(t)
    assert p90.timeout() >= p75.timeout() - 1e-9


# ---------------------------------------------------------------------------
# Pipeline cost properties
# ---------------------------------------------------------------------------


@given(
    cost=st.floats(min_value=1e-4, max_value=10, allow_nan=False),
    stages=st.integers(min_value=1, max_value=8),
)
def test_cost_profile_sums_to_total(cost, stages):
    pipeline = stub_pipeline(stages)
    spec = StubDataset([cost]).spec(0)
    profile = pipeline.cost_profile(spec)
    assert len(profile) == stages
    assert math.isclose(sum(profile), pipeline.total_cost(spec), rel_tol=1e-9)


@given(
    cost=st.floats(min_value=1e-4, max_value=10, allow_nan=False),
    permutation_seed=st.integers(min_value=0, max_value=1000),
)
def test_size_independent_pipeline_cost_is_permutation_invariant(
    cost, permutation_seed
):
    pipeline = stub_pipeline(4)
    spec = StubDataset([cost]).spec(0)
    rng = np.random.default_rng(permutation_seed)
    order = rng.permutation(4).tolist()
    reordered = pipeline.reordered(order)
    assert math.isclose(
        reordered.total_cost(spec), pipeline.total_cost(spec), rel_tol=1e-9
    )


# ---------------------------------------------------------------------------
# Deterministic draws
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    salt=st.integers(min_value=0, max_value=10_000),
    stream=st.integers(min_value=0, max_value=100),
)
def test_u01_bounds_and_determinism(seed, salt, stream):
    spec = SampleSpec(index=0, raw_nbytes=1, seed=seed, modality="x")
    value = spec.u01(salt, stream)
    assert 0.0 <= value < 1.0
    assert value == spec.u01(salt, stream)


# ---------------------------------------------------------------------------
# Batch plan dealing
# ---------------------------------------------------------------------------


@given(
    total=st.integers(min_value=0, max_value=5000),
    batch=st.integers(min_value=1, max_value=64),
    gpus=st.integers(min_value=1, max_value=8),
)
def test_deal_batch_plan_conserves_samples(total, batch, gpus):
    plan = _deal_batch_plan(total, batch, gpus)
    assert len(plan) == gpus
    assert sum(sum(sizes) for sizes in plan) == total
    for sizes in plan:
        assert all(1 <= s <= batch for s in sizes)
    # balanced: per-GPU batch counts differ by at most one
    counts = [len(sizes) for sizes in plan]
    assert max(counts) - min(counts) <= 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


@given(
    intervals=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        max_size=40,
    )
)
def test_utilization_series_bounded_and_conserves_busy_time(intervals):
    recorder = IntervalRecorder()
    for start, duration in intervals:
        recorder.record(start, start + duration)
    series = utilization_series(recorder.intervals, 0.0, 60.0, bucket=1.0)
    for _t, fraction in series:
        assert 0.0 <= fraction <= 1.0 + 1e-9
    # busy time within [0, 60] is conserved by the bucketing (to capacity 1,
    # buckets clip at 1.0, so only check when no bucket saturates)
    if all(f < 0.999 for _t, f in series):
        busy_in_window = sum(
            max(0.0, min(60.0, s + d) - min(s, 60.0)) for s, d in intervals
        )
        assert math.isclose(
            sum(f for _t, f in series), busy_in_window, rel_tol=1e-6, abs_tol=1e-6
        )


# ---------------------------------------------------------------------------
# Simulation store FIFO property
# ---------------------------------------------------------------------------


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
@settings(deadline=None)
def test_store_fifo_order_preserved(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(("item", item))

    def consumer():
        for _ in items:
            tag_value = yield store.get()
            received.append(tag_value[1])

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=300
    ),
    width=st.integers(min_value=1, max_value=100),
)
def test_sparkline_width_bounded(values, width):
    line = sparkline(values, width=width)
    assert len(line) <= max(width, len(values)) if values else line == ""


@given(
    side=st.integers(min_value=1, max_value=12),
    bits_a=st.integers(min_value=0, max_value=2**16),
    bits_b=st.integers(min_value=0, max_value=2**16),
)
def test_dice_score_bounds_and_identity(side, bits_a, bits_b):
    rng_a = np.random.default_rng(bits_a)
    rng_b = np.random.default_rng(bits_b)
    a = rng_a.random((side, side)) > 0.5
    b = rng_b.random((side, side)) > 0.5
    score = dice_score(a, b)
    assert 0.0 <= score <= 1.0
    assert dice_score(a, a) == 1.0
    assert math.isclose(score, dice_score(b, a))
