"""Sharded data-parallel loading semantics, across both substrates.

Covers the DistributedSampler-style guarantees the lockstep DDP consumers
rely on (equal-length ranks, per-epoch coverage, disjointness when the
dataset divides evenly), the threaded ``MinatoLoader``'s termination with a
sharded sampler (previously a deadlock: quotas were sized from the dataset
while the feeder only fed the shard), and multi-rank agreement between the
threaded engine and the discrete-event simulator.
"""

import threading

import pytest

from repro.clock import ThreadLocalClock
from repro.core import MinatoConfig, MinatoLoader
from repro.data.samplers import ShardedSampler
from repro.sim.distributed import run_distributed
from repro.sim.kernel import Environment
from repro.sim.loaders import SimContext, SimMinatoLoader
from repro.sim.workloads import CONFIG_A, WorkloadSpec, make_workload

from .helpers import StubDataset, stub_pipeline

DEADLOCK_TIMEOUT = 30.0  # wall seconds; generous, the runs take < 1 s


# ---------------------------------------------------------------------------
# ShardedSampler semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n,world", [(100, 4), (103, 4), (7, 3), (5, 8)])
def test_shards_equal_length_across_ranks_and_epochs(n, world):
    shards = [ShardedSampler(n, rank=r, world_size=world, seed=3) for r in range(world)]
    expected = (n + world - 1) // world
    for epoch in range(3):
        lengths = [len(s.epoch(epoch)) for s in shards]
        assert lengths == [expected] * world
        assert [len(s) for s in shards] == lengths


@pytest.mark.parametrize("epoch", [0, 1, 5])
def test_shards_disjoint_and_covering_when_evenly_divisible(epoch):
    n, world = 120, 4
    shards = [ShardedSampler(n, rank=r, world_size=world, seed=7) for r in range(world)]
    slices = [s.epoch(epoch) for s in shards]
    combined = [i for piece in slices for i in piece]
    # disjoint: no index appears on two ranks; covering: all indices appear
    assert len(combined) == len(set(combined)) == n
    assert set(combined) == set(range(n))


def test_padding_covers_and_duplicates_at_most_world_minus_one():
    n, world = 103, 4
    shards = [ShardedSampler(n, rank=r, world_size=world, seed=5) for r in range(world)]
    combined = [i for s in shards for i in s.epoch(1)]
    assert set(combined) == set(range(n))
    duplicates = len(combined) - len(set(combined))
    assert 0 < duplicates <= world - 1


def test_drop_last_mode_is_exactly_disjoint_but_may_not_cover():
    n, world = 103, 4
    shards = [
        ShardedSampler(n, rank=r, world_size=world, seed=5, drop_last=True)
        for r in range(world)
    ]
    assert [len(s) for s in shards] == [n // world] * world
    combined = [i for s in shards for i in s.epoch(0)]
    assert len(combined) == len(set(combined))  # no duplicates
    assert set(combined) < set(range(n))  # tail dropped
    assert len(combined) == (n // world) * world


def test_shards_share_the_global_shuffle():
    """All ranks slice the *same* epoch shuffle, so the union of rank slices
    taken in stride order reconstructs it."""
    n, world = 12, 3
    shards = [ShardedSampler(n, rank=r, world_size=world, seed=11) for r in range(world)]
    slices = [s.epoch(4) for s in shards]
    rebuilt = [slices[i % world][i // world] for i in range(n)]
    from repro.data.samplers import RandomSampler

    assert rebuilt == RandomSampler(n, seed=11).epoch(4)


def test_shard_reshuffles_between_epochs():
    s = ShardedSampler(64, rank=1, world_size=2, seed=1)
    assert s.epoch(0) != s.epoch(1)
    assert s.epoch(0) == s.epoch(0)


# ---------------------------------------------------------------------------
# Block layout + locality-preserving slot assignment
# ---------------------------------------------------------------------------


def block_sets(n, world, seed=0):
    return {
        rank: ShardedSampler(
            n, rank=rank, world_size=world, seed=seed, layout="block"
        ).shard_indices()
        for rank in range(world)
    }


def test_block_layout_partitions_and_reshuffles_within():
    shards = [
        ShardedSampler(96, rank=r, world_size=4, seed=5, layout="block")
        for r in range(4)
    ]
    sets = [s.shard_indices() for s in shards]
    assert set().union(*sets) == set(range(96))
    assert sum(len(x) for x in sets) == 96  # disjoint on even division
    for s in shards:
        assert s.epoch(0) != s.epoch(1)  # fresh within-block order...
        assert set(s.epoch(0)) == set(s.epoch(1))  # ...over the same set


def test_block_layout_rejects_bad_name():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ShardedSampler(10, rank=0, world_size=2, layout="diagonal")


def test_stride_assignment_is_positional():
    from repro.data.samplers import ShardAssignment

    policy = ShardAssignment("stride")
    assert policy.layout == "stride"
    assert policy.assign([5, 2, 9], {}, n=96) == {2: 0, 5: 1, 9: 2}


def test_locality_assignment_beats_positional_on_a_head_leave():
    """Node 0 of [0..3] leaves.  Positional slots would shift every
    survivor one block left (overlap 8/16/24 of 40); the order-preserving
    optimal matching keeps each survivor on its own region (24/16/8 on the
    *matching* slots, total 48 either way here, but per-node stable) --
    crucially node 3 keeps the tail block instead of being re-cut."""
    from repro.data.samplers import ShardAssignment

    n, seed = 96, 0
    old = block_sets(n, 4, seed)
    previous = {node: old[node] for node in (1, 2, 3)}
    assignment = ShardAssignment("locality").assign(
        [1, 2, 3], previous, n, seed=seed
    )
    new = block_sets(n, 3, seed)
    # order-preserving: survivors keep their relative block order
    assert [assignment[node] for node in (1, 2, 3)] == [0, 1, 2]
    total = sum(len(previous[node] & new[assignment[node]]) for node in (1, 2, 3))
    # optimal for these intervals: 8 + 16 + 24
    assert total == 48


def test_locality_assignment_keeps_survivors_on_their_blocks_on_join():
    """2 -> 3 nodes: both survivors' new (smaller) blocks nest inside
    their old ones -- full overlap -- and the joiner takes the leftover
    middle slot."""
    from repro.data.samplers import ShardAssignment

    n, seed = 96, 0
    previous = block_sets(n, 2, seed)
    assignment = ShardAssignment("locality").assign(
        [0, 1, 7], previous, n, seed=seed
    )
    new = block_sets(n, 3, seed)
    for node in (0, 1):
        got = new[assignment[node]]
        assert len(got & previous[node]) == len(got)  # fully nested
    assert assignment[7] == (set(range(3)) - {assignment[0], assignment[1]}).pop()


def test_locality_assignment_is_optimal_where_greedy_is_not():
    """Greedy by best single overlap would give node 3 the tail block
    (24), then node 1 the middle (16), starving node 2 entirely (total
    40); the DP's non-crossing matching reaches 48."""
    from repro.data.samplers import ShardAssignment

    n, seed = 96, 0
    old = block_sets(n, 4, seed)
    previous = {node: old[node] for node in (1, 2, 3)}
    assignment = ShardAssignment("locality").assign(
        [1, 2, 3], previous, n, seed=seed
    )
    new = block_sets(n, 3, seed)
    total = sum(len(previous[node] & new[assignment[node]]) for node in (1, 2, 3))
    assert total > 40


def test_locality_assignment_without_history_is_positional():
    from repro.data.samplers import ShardAssignment

    policy = ShardAssignment("locality")
    assert policy.layout == "block"
    assert policy.assign([3, 1], {}, n=96) == {1: 0, 3: 1}


def test_shard_assignment_rejects_unknown_policy():
    from repro.data.samplers import ShardAssignment
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ShardAssignment("round-robin")


def test_sim_loaders_honor_shard_layout():
    """Standalone sharded sim loaders (no elastic executor injecting a
    sampler) build their own shard from `shard_layout`; DALI's per-GPU
    subdivision keeps the layout so GPU streams are sub-blocks."""
    from repro.sim.loaders import SimDALILoader
    from repro.sim.runner import make_sim_loader

    workload = make_workload("speech_3s", dataset_size=96).scaled(0.02)
    env = Environment()
    ctx = SimContext(env, workload, CONFIG_A, 1)
    loader = make_sim_loader(
        "minato", shard_rank=1, shard_world_size=2, shard_layout="block",
        total_batches_override=1,
    )
    loader.start(ctx)
    assert loader.sampler.layout == "block"
    assert loader.sampler.shard_indices() == ShardedSampler(
        96, rank=1, world_size=2, layout="block"
    ).shard_indices()

    dali = SimDALILoader(shard_rank=0, shard_world_size=2, shard_layout="block")
    dali.ctx = SimContext(Environment(), workload, CONFIG_A, 2)
    dali.total_batches_override = 2
    node_block = ShardedSampler(96, rank=0, world_size=2, layout="block").shard_indices()
    for gpu in range(2):
        stream = dali._shard_stream(gpu)
        one_pass = {next(stream) for _ in range(24)}  # (node 0, gpu) shard
        assert one_pass <= node_block  # per-GPU sub-block nests in the node block


# ---------------------------------------------------------------------------
# Threaded MinatoLoader with a ShardedSampler (deadlock regression)
# ---------------------------------------------------------------------------


def _run_sharded_loader(rank, world, n_samples, epochs=2, batch_size=4):
    """Consume a sharded loader on a watchdog thread; fail instead of hang."""
    dataset = StubDataset([0.01] * n_samples)
    sampler = ShardedSampler(n_samples, rank=rank, world_size=world, seed=2)
    cfg = MinatoConfig(
        batch_size=batch_size,
        num_workers=2,
        warmup_samples=4,
        adaptive_workers=False,
        seed=2,
    )
    loader = MinatoLoader(
        dataset,
        stub_pipeline(),
        cfg,
        epochs=epochs,
        clock=ThreadLocalClock(),
        sampler=sampler,
    )
    result = {}

    def consume():
        with loader:
            result["indices"] = [
                s.spec.index for batch in loader.batches(0) for s in batch.samples
            ]

    worker = threading.Thread(target=consume, daemon=True)
    worker.start()
    worker.join(timeout=DEADLOCK_TIMEOUT)
    if worker.is_alive():
        loader.shutdown(timeout=1.0)
        pytest.fail(
            f"MinatoLoader deadlocked with ShardedSampler(rank={rank}, "
            f"world_size={world}, n={n_samples})"
        )
    return result["indices"], sampler


@pytest.mark.parametrize("n_samples", [23, 24])
def test_minato_loader_with_sharded_sampler_terminates(n_samples):
    """Regression: _total_expected was sized from the dataset, so a sharded
    feeder (which yields ~n/world samples) never satisfied the builders'
    quota and consumption hung forever -- on odd and even sizes alike."""
    indices, sampler = _run_sharded_loader(rank=0, world=2, n_samples=n_samples)
    assert len(indices) == 2 * len(sampler)  # epochs * shard length


def test_minato_loader_len_reflects_shard():
    dataset = StubDataset([0.01] * 23)
    sampler = ShardedSampler(23, rank=1, world_size=2, seed=2)
    loader = MinatoLoader(
        dataset,
        stub_pipeline(),
        MinatoConfig(batch_size=4, seed=2),
        epochs=2,
        clock=ThreadLocalClock(),
        sampler=sampler,
    )
    # 2 epochs x 12 padded shard samples = 24 samples -> 6 batches of 4
    assert len(loader) == 6


def test_minato_ranks_cover_dataset_per_epoch():
    n, world = 24, 2
    per_rank = [
        _run_sharded_loader(rank=r, world=world, n_samples=n, epochs=1)[0]
        for r in range(world)
    ]
    combined = [i for indices in per_rank for i in indices]
    assert len(combined) == len(set(combined)) == n
    assert set(combined) == set(range(n))


# ---------------------------------------------------------------------------
# Multi-rank cross-substrate agreement
# ---------------------------------------------------------------------------


def _sim_rank_indices(rank, world, costs, batch_size=4):
    env = Environment()
    workload = WorkloadSpec(
        name="shard-agreement",
        dataset=StubDataset(costs),
        pipeline=stub_pipeline(),
        model=None,
        batch_size=batch_size,
        epochs=1,
    )
    ctx = SimContext(env, workload, CONFIG_A, num_gpus=1)
    loader = SimMinatoLoader(
        workers_per_gpu=1,
        slow_workers=1,
        timeout_override=0.05,
        adaptive_workers=False,
        seed=2,
        shard_rank=rank,
        shard_world_size=world,
    )
    loader.start(ctx)
    got = []

    def consumer():
        while True:
            batch = yield from loader.get_batch(0)
            if batch is None:
                return
            got.extend(s.index for s in batch.specs)

    env.run(until=env.process(consumer()))
    return got


def test_multi_rank_cross_substrate_agreement():
    """Both substrates, run as `world` independent ranks over the same seed,
    produce shard streams that are equal-length, disjoint and cover the
    dataset -- and each rank processes the identical index *set* on both
    substrates (the sampler layer is substrate-neutral)."""
    n, world = 24, 2
    costs = [0.01] * n
    threaded = [
        set(_run_sharded_loader(rank=r, world=world, n_samples=n, epochs=1)[0])
        for r in range(world)
    ]
    simulated = [set(_sim_rank_indices(r, world, costs)) for r in range(world)]
    assert threaded == simulated
    for ranks in (threaded, simulated):
        assert all(len(s) == n // world for s in ranks)
        assert set().union(*ranks) == set(range(n))
        assert not ranks[0] & ranks[1]


# ---------------------------------------------------------------------------
# run_distributed sharding invariants
# ---------------------------------------------------------------------------


def test_run_distributed_ranks_get_disjoint_equal_shards():
    wl = make_workload("speech_3s", dataset_size=120).scaled(0.02)
    result = run_distributed("minato", wl, CONFIG_A, nodes=3, gpus_per_node=1)
    assert len(result.shard_sizes) == 3
    assert len(set(result.shard_sizes)) == 1  # equal-length
    assert sum(result.shard_sizes) == 120  # disjoint cover (120 % 3 == 0)
    # the shards the runner reports match ShardedSampler's own arithmetic
    assert result.shard_sizes[0] == len(ShardedSampler(120, rank=0, world_size=3))


def test_sim_loader_rejects_world_without_rank():
    """shard_world_size without shard_rank must fail fast, not silently
    duplicate rank 0's shard on every node."""
    from repro.errors import ConfigurationError

    env = Environment()
    workload = WorkloadSpec(
        name="half-configured",
        dataset=StubDataset([0.01] * 8),
        pipeline=stub_pipeline(),
        model=None,
        batch_size=4,
        epochs=1,
    )
    ctx = SimContext(env, workload, CONFIG_A, num_gpus=1)
    loader = SimMinatoLoader(shard_world_size=2)
    with pytest.raises(ConfigurationError):
        loader.start(ctx)


def test_sim_loader_rejects_sharded_iteration_budget_without_override():
    """Iteration budgets are cluster-wide: a sharded rank that omits
    total_batches_override would redundantly run the whole budget, so it
    must fail fast instead."""
    from repro.errors import ConfigurationError

    wl = make_workload("speech_3s", dataset_size=120).scaled(0.02)
    env = Environment()
    ctx = SimContext(env, wl, CONFIG_A, num_gpus=1)
    loader = SimMinatoLoader(shard_rank=0, shard_world_size=2)
    with pytest.raises(ConfigurationError):
        loader.start(ctx)


def test_torch_sim_rejects_shard_smaller_than_one_batch():
    """Regression: a shard smaller than the batch size under drop_last
    yielded zero batches per epoch and the orchestrator spun forever
    instead of surfacing the unsatisfiable budget."""
    from repro.errors import ConfigurationError

    wl = make_workload("speech_3s", dataset_size=120).scaled(0.02)
    # 8 nodes -> 15-sample shards < batch_size 24 -> no full batch, ever
    with pytest.raises(ConfigurationError):
        run_distributed("pytorch", wl, CONFIG_A, nodes=8, gpus_per_node=1)


def test_run_distributed_shares_cluster_step_budget():
    """Iteration-budgeted workloads split the cluster-wide step budget
    across ranks instead of every node redundantly running all of it."""
    wl = make_workload("speech_3s", dataset_size=120).scaled(0.02)  # 20 iterations
    result = run_distributed("minato", wl, CONFIG_A, nodes=2, gpus_per_node=2)
    assert result.steps == 20  # ceil(20 / 4) per GPU x 4 GPUs
    assert result.samples == 20 * wl.batch_size
